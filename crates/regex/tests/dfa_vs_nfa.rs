//! Differential testing: the memoized DFA fast path must agree with the
//! cyclic-NFA oracle on *every* membership query — including after the DFA
//! exceeds its state budget and falls back to the NFA.
//!
//! Three layers of evidence, all deterministic (the vendored proptest seeds
//! each test from its name):
//!
//! 1. property tests over generated patterns × generated values: uniform
//!    random token strings, sampled language members, and single-token
//!    mutants of members (the adversarial near-miss population);
//! 2. the same comparison against a tiny-budget compile, so the overflow
//!    fallback path answers a large share of the queries;
//! 3. an exhaustive sweep of hand-picked corner patterns against *all*
//!    strings up to length 6 over a small alphabet;
//! 4. the packed-byte ASCII batch path (`matches_many_ascii`) against both
//!    the per-value token path and the NFA oracle, again under roomy and
//!    starved budgets, plus deterministic checks that masks and non-ASCII
//!    characters refuse to pack.
//!
//! Together these run well over 10 000 membership comparisons per suite
//! execution (see `case_volume_is_at_least_10k` and
//! `ascii_case_volume_is_at_least_10k`, which count them).

use std::cell::Cell;

use proptest::prelude::*;

use datavinci_regex::{AsciiBatch, CharClass, CompiledPattern, MaskId, MaskedString, Pattern, Tok};

thread_local! {
    /// Comparisons executed by the helper below (per test thread).
    static COMPARISONS: Cell<u64> = const { Cell::new(0) };
}

/// Asserts DFA and NFA agree on one value; returns the DFA verdict.
fn assert_agree(compiled: &CompiledPattern, value: &MaskedString) -> Result<bool, TestCaseError> {
    let dfa = compiled.matches(value);
    let nfa = compiled.matches_nfa(value);
    COMPARISONS.with(|c| c.set(c.get() + 1));
    prop_assert_eq!(
        dfa,
        nfa,
        "engines disagree on {:?} for pattern {} (overflowed: {})",
        value.to_string(),
        compiled.pattern(),
        compiled.dfa_overflowed()
    );
    Ok(dfa)
}

/// True iff every token is a plain ASCII character — the precondition for
/// `AsciiBatch::from_values` to pack the column.
fn is_ascii_chars(v: &MaskedString) -> bool {
    v.toks()
        .iter()
        .all(|t| matches!(t, Tok::Char(c) if c.is_ascii()))
}

/// Packs `values`, then asserts the byte path, the token path, and the NFA
/// oracle all return the same verdict vector.
fn assert_batch_agrees(
    compiled: &CompiledPattern,
    values: &[MaskedString],
) -> Result<(), TestCaseError> {
    let batch = AsciiBatch::from_values(values).expect("ASCII char-only values must pack");
    let fast = compiled.matches_many_ascii(&batch);
    let token = compiled.matches_many(values);
    let oracle: Vec<bool> = values.iter().map(|v| compiled.matches_nfa(v)).collect();
    COMPARISONS.with(|c| c.set(c.get() + values.len() as u64));
    prop_assert_eq!(
        &fast,
        &token,
        "byte path vs token path for pattern {}",
        compiled.pattern()
    );
    prop_assert_eq!(
        &fast,
        &oracle,
        "byte path vs NFA oracle for pattern {} (overflowed: {})",
        compiled.pattern(),
        compiled.dfa_overflowed()
    );
    Ok(())
}

/// Pattern generator: literals, classes, masks, disjunctions, concats,
/// alternations, and quantifiers, depth-bounded.
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    let leaf = prop_oneof![
        "[a-c]{1,3}".prop_map(Pattern::lit),
        "[A-C0-2]{1,2}".prop_map(Pattern::lit),
        Just(Pattern::lit("-")),
        Just(Pattern::Empty),
        Just(Pattern::Class(CharClass::Digit)),
        Just(Pattern::Class(CharClass::Binary)),
        Just(Pattern::Class(CharClass::Lower)),
        Just(Pattern::Class(CharClass::Upper)),
        Just(Pattern::Class(CharClass::AlphaNumSpace)),
        Just(Pattern::Mask(MaskId(0))),
        Just(Pattern::Mask(MaskId(1))),
        Just(Pattern::disj(["cat", "dog"])),
        Just(Pattern::disj(["ON", "OFF", "AUTO"])),
        Just(Pattern::disj(["a", "ab", "abc"])),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Pattern::concat),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Pattern::Alt),
            inner.clone().prop_map(Pattern::plus),
            inner.clone().prop_map(Pattern::star),
            inner.clone().prop_map(Pattern::opt),
            (inner, 0u32..4).prop_map(|(p, n)| Pattern::Repeat {
                body: Box::new(p),
                min: n,
                max: Some(n + 1),
            }),
        ]
    })
}

/// A random token string over the generators' shared alphabet (chars the
/// patterns use, near-miss chars, and the two mask symbols).
fn arb_value() -> impl Strategy<Value = MaskedString> {
    let tok = prop_oneof![
        "[a-d]".prop_map(|s| Tok::Char(s.chars().next().expect("one char"))),
        "[A-D0-3]".prop_map(|s| Tok::Char(s.chars().next().expect("one char"))),
        "[-. oxOX]".prop_map(|s| Tok::Char(s.chars().next().expect("one char"))),
        (0u16..3).prop_map(|m| Tok::Mask(MaskId(m))),
    ];
    prop::collection::vec(tok, 0..14).prop_map(MaskedString::from_toks)
}

/// Like `arb_value`, but mask-free: every token is an ASCII char, so the
/// vector always packs into an `AsciiBatch`.
fn arb_ascii_value() -> impl Strategy<Value = MaskedString> {
    let tok = prop_oneof![
        "[a-d]".prop_map(|s| Tok::Char(s.chars().next().expect("one char"))),
        "[A-D0-3]".prop_map(|s| Tok::Char(s.chars().next().expect("one char"))),
        "[-. oxOX]".prop_map(|s| Tok::Char(s.chars().next().expect("one char"))),
    ];
    prop::collection::vec(tok, 0..14).prop_map(MaskedString::from_toks)
}

/// Samples one member of the pattern's language, driven by `picks`.
fn sample_member(pattern: &Pattern, picks: &[usize]) -> MaskedString {
    fn go(p: &Pattern, picks: &[usize], cursor: &mut usize, out: &mut MaskedString) {
        let mut pick = |n: usize| {
            let v = picks.get(*cursor).copied().unwrap_or(0);
            *cursor += 1;
            v % n.max(1)
        };
        match p {
            Pattern::Empty => {}
            Pattern::Str(s) => s.chars().for_each(|c| out.push(Tok::Char(c))),
            Pattern::Class(c) => {
                let candidates: Vec<char> = ('0'..='9')
                    .chain('a'..='z')
                    .chain('A'..='Z')
                    .chain(std::iter::once(' '))
                    .filter(|ch| c.contains(*ch))
                    .collect();
                out.push(Tok::Char(candidates[pick(candidates.len())]));
            }
            Pattern::Mask(m) => out.push(Tok::Mask(*m)),
            Pattern::Disj(alts) => {
                let alt = &alts[pick(alts.len())];
                alt.chars().for_each(|c| out.push(Tok::Char(c)));
            }
            Pattern::Concat(parts) => {
                for part in parts {
                    go(part, picks, cursor, out);
                }
            }
            Pattern::Alt(parts) => {
                let part = &parts[pick(parts.len())];
                go(part, picks, cursor, out);
            }
            Pattern::Repeat { body, min, max } => {
                let extra = match max {
                    Some(m) => pick((*m - *min + 1) as usize) as u32,
                    None => pick(3) as u32,
                };
                for _ in 0..(*min + extra) {
                    go(body, picks, cursor, out);
                }
            }
        }
    }
    let mut out = MaskedString::default();
    go(pattern, picks, &mut 0, &mut out);
    out
}

/// Single-token mutants of a member: deletions, substitutions, insertions.
fn mutants(member: &MaskedString, picks: &[usize]) -> Vec<MaskedString> {
    let toks = member.toks();
    let replacements = [
        Tok::Char('a'),
        Tok::Char('Z'),
        Tok::Char('5'),
        Tok::Char('-'),
        Tok::Mask(MaskId(0)),
        Tok::Mask(MaskId(2)),
    ];
    let mut out = Vec::new();
    for (i, &p) in picks.iter().enumerate() {
        let n = toks.len();
        let mutated: Vec<Tok> = match i % 3 {
            // Delete one token.
            0 if n > 0 => {
                let at = p % n;
                toks[..at].iter().chain(&toks[at + 1..]).copied().collect()
            }
            // Substitute one token.
            1 if n > 0 => {
                let at = p % n;
                let mut v = toks.to_vec();
                v[at] = replacements[p % replacements.len()];
                v
            }
            // Insert one token (also covers the empty member).
            _ => {
                let at = p % (n + 1);
                let mut v = toks.to_vec();
                v.insert(at, replacements[p % replacements.len()]);
                v
            }
        };
        out.push(MaskedString::from_toks(mutated));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    /// Random patterns × random values: the engines always agree.
    #[test]
    fn dfa_agrees_on_random_values(
        pattern in arb_pattern(),
        values in prop::collection::vec(arb_value(), 12),
    ) {
        let compiled = CompiledPattern::compile(pattern);
        for v in &values {
            assert_agree(&compiled, v)?;
        }
        // Batch membership is the same function, in one lock.
        let batch = compiled.matches_many(&values);
        let single: Vec<bool> = values.iter().map(|v| compiled.matches(v)).collect();
        prop_assert_eq!(batch, single);
    }

    /// Members and their near-miss mutants: the adversarial population the
    /// profiler actually faces (values close to, but outside, the language).
    #[test]
    fn dfa_agrees_on_members_and_mutants(
        pattern in arb_pattern(),
        picks in prop::collection::vec(0usize..97, 40),
    ) {
        let member = sample_member(&pattern, &picks);
        prop_assume!(member.len() <= 40);
        let compiled = CompiledPattern::compile(pattern);
        let accepted = assert_agree(&compiled, &member)?;
        prop_assert!(
            accepted,
            "sampled member {:?} rejected by {}",
            member.to_string(),
            compiled.pattern()
        );
        for mutant in mutants(&member, &picks[..8]) {
            assert_agree(&compiled, &mutant)?;
        }
    }

    /// A state budget of 2 overflows almost immediately: most queries run
    /// on the fallback path, which must still agree with the oracle.
    #[test]
    fn overbudget_fallback_agrees(
        pattern in arb_pattern(),
        values in prop::collection::vec(arb_value(), 6),
        picks in prop::collection::vec(0usize..97, 24),
    ) {
        let compiled = CompiledPattern::compile_with_dfa_budget(pattern, 2);
        let member = sample_member(compiled.pattern(), &picks);
        if member.len() <= 40 {
            let accepted = assert_agree(&compiled, &member)?;
            prop_assert!(accepted, "member {:?} rejected", member.to_string());
        }
        for v in values.iter().chain(&mutants(&member, &picks[..4])) {
            assert_agree(&compiled, v)?;
        }
    }

    /// Random patterns × packed ASCII columns: the byte path must answer
    /// exactly like the token path and the NFA oracle.
    #[test]
    fn ascii_batch_agrees_on_random_values(
        pattern in arb_pattern(),
        values in prop::collection::vec(arb_ascii_value(), 16),
    ) {
        let compiled = CompiledPattern::compile(pattern);
        assert_batch_agrees(&compiled, &values)?;
    }

    /// A budget of 2 overflows mid-batch, so most of each batch runs on the
    /// byte-level NFA fallback — which must still agree. Members and their
    /// ASCII mutants ride along when the sampled member is mask-free.
    #[test]
    fn ascii_batch_overbudget_fallback_agrees(
        pattern in arb_pattern(),
        values in prop::collection::vec(arb_ascii_value(), 12),
        picks in prop::collection::vec(0usize..97, 24),
    ) {
        let compiled = CompiledPattern::compile_with_dfa_budget(pattern, 2);
        let member = sample_member(compiled.pattern(), &picks);
        let mut batch_values = values;
        if member.len() <= 40 && is_ascii_chars(&member) {
            batch_values.extend(
                mutants(&member, &picks[..6])
                    .into_iter()
                    .filter(is_ascii_chars),
            );
            batch_values.push(member);
        }
        assert_batch_agrees(&compiled, &batch_values)?;
    }
}

/// Corner patterns (epsilon-heavy, overlapping disjunctions, masks) swept
/// against every token string up to length 6 over a 2-symbol alphabet —
/// exhaustive, so nothing hides between random draws.
#[test]
fn exhaustive_small_alphabet_sweep() {
    let patterns: Vec<Pattern> = vec![
        Pattern::Empty,
        Pattern::lit("a"),
        Pattern::lit("a1a"),
        Pattern::star(Pattern::lit("a")),
        Pattern::star(Pattern::star(Pattern::lit("a1"))),
        Pattern::opt(Pattern::opt(Pattern::lit("1"))),
        Pattern::star(Pattern::Empty),
        Pattern::plus(Pattern::Alt(vec![Pattern::lit("a"), Pattern::lit("aa")])),
        Pattern::disj(["a", "a1", "a1a", "1"]),
        Pattern::concat([Pattern::disj(["a", "aa"]), Pattern::disj(["1", "a1"])]),
        Pattern::Alt(vec![
            Pattern::class_plus(CharClass::Digit),
            Pattern::class_plus(CharClass::Lower),
        ]),
        Pattern::Repeat {
            body: Box::new(Pattern::opt(Pattern::lit("a"))),
            min: 2,
            max: Some(3),
        },
        Pattern::Repeat {
            body: Box::new(Pattern::Class(CharClass::Binary)),
            min: 0,
            max: Some(0),
        },
        Pattern::concat([
            Pattern::Mask(MaskId(0)),
            Pattern::star(Pattern::Alt(vec![
                Pattern::Mask(MaskId(0)),
                Pattern::lit("a"),
            ])),
        ]),
    ];
    let symbols = [Tok::Char('a'), Tok::Char('1'), Tok::Mask(MaskId(0))];
    // All 3^0 + … + 3^6 = 1093 strings.
    let mut values: Vec<MaskedString> = vec![MaskedString::default()];
    let mut frontier: Vec<Vec<Tok>> = vec![Vec::new()];
    for _ in 0..6 {
        let mut next = Vec::new();
        for prefix in &frontier {
            for &s in &symbols {
                let mut v = prefix.clone();
                v.push(s);
                values.push(MaskedString::from_toks(v.clone()));
                next.push(v);
            }
        }
        frontier = next;
    }
    let mut comparisons = 0u64;
    for pattern in patterns {
        // Both a roomy and a starved budget, to cover both engines.
        for budget in [512, 2] {
            let compiled = CompiledPattern::compile_with_dfa_budget(pattern.clone(), budget);
            for v in &values {
                assert_eq!(
                    compiled.matches(v),
                    compiled.matches_nfa(v),
                    "pattern {} (budget {budget}) on {:?}",
                    compiled.pattern(),
                    v.to_string()
                );
                comparisons += 1;
            }
        }
    }
    assert!(comparisons > 30_000, "sweep ran {comparisons} comparisons");
}

/// The property tests above must execute ≥ 10k membership comparisons —
/// guards against silently shrinking case counts.
#[test]
fn case_volume_is_at_least_10k() {
    COMPARISONS.with(|c| c.set(0));
    dfa_agrees_on_random_values();
    dfa_agrees_on_members_and_mutants();
    overbudget_fallback_agrees();
    let total = COMPARISONS.with(Cell::get);
    assert!(
        total >= 10_000,
        "differential property tests ran only {total} comparisons"
    );
}

/// Mask tokens and non-ASCII characters must refuse to pack — one offending
/// value anywhere poisons the whole column, forcing the per-value token
/// path the profiler falls back to.
#[test]
fn ascii_batch_rejects_masks_and_non_ascii() {
    let masked = MaskedString::from_toks(vec![Tok::Char('a'), Tok::Mask(MaskId(0))]);
    assert!(AsciiBatch::from_values(std::slice::from_ref(&masked)).is_none());

    let naive = MaskedString::from_toks("naïve".chars().map(Tok::Char).collect::<Vec<_>>());
    assert!(AsciiBatch::from_values(std::slice::from_ref(&naive)).is_none());

    let plain = MaskedString::from_toks(vec![Tok::Char('x'), Tok::Char('7')]);
    assert!(AsciiBatch::from_values(&[plain.clone(), masked]).is_none());
    assert!(AsciiBatch::from_values(&[plain.clone(), naive]).is_none());
    assert!(AsciiBatch::from_values(std::slice::from_ref(&plain)).is_some());
}

/// Empty batches, empty values, and the min-length prefilter all behave
/// identically to the token path.
#[test]
fn ascii_batch_handles_empty_values_and_min_len() {
    let compiled = CompiledPattern::compile(Pattern::lit("abc"));

    let empty = AsciiBatch::from_values(&[]).expect("empty slice packs");
    assert_eq!(compiled.matches_many_ascii(&empty), Vec::<bool>::new());

    let values: Vec<MaskedString> = ["", "ab", "abc", "abcd", ""]
        .iter()
        .map(|s| MaskedString::from_toks(s.chars().map(Tok::Char).collect::<Vec<_>>()))
        .collect();
    let batch = AsciiBatch::from_values(&values).expect("ASCII values pack");
    assert_eq!(batch.len(), values.len());
    assert_eq!(
        compiled.matches_many_ascii(&batch),
        compiled.matches_many(&values)
    );
    assert_eq!(
        compiled.matches_many_ascii(&batch),
        vec![false, false, true, false, false]
    );
}

/// The ASCII-batch property tests must clear 10k comparisons on their own —
/// the fast path's evidence can't silently shrink either.
#[test]
fn ascii_case_volume_is_at_least_10k() {
    COMPARISONS.with(|c| c.set(0));
    ascii_batch_agrees_on_random_values();
    ascii_batch_overbudget_fallback_agrees();
    let total = COMPARISONS.with(Cell::get);
    assert!(
        total >= 10_000,
        "ASCII batch property tests ran only {total} comparisons"
    );
}
