//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§4–§5).
//!
//! * [`metrics`] — detection precision/recall/F1, fire rate, certain/
//!   possible repair precision, repair-given-detection.
//! * [`runner`] — builds all systems with their training context and runs
//!   them over the four benchmarks; the Table-8 execution protocol.
//!
//! One binary per paper artifact: `table3` … `table10`, `fig7`. Each prints
//! the measured values next to the paper's, and accepts `--smoke`
//! (tiny), default (medium), or `--full` (paper-scale) sizing plus
//! `--seed N`. EXPERIMENTS.md records a reference run.

pub mod alloc_meter;
pub mod metrics;
pub mod report;
pub mod runner;

pub use metrics::{truth_rows, DetectionCounts, RepairCounts};
pub use runner::{ExecMode, ExecOutcome, Harness, SystemKind};

/// Shared CLI parsing for the table binaries.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// Benchmark scale.
    pub scale: datavinci_corpus::Scale,
    /// Evaluation seed, when given explicitly via `--seed N`.
    pub explicit_seed: Option<u64>,
    /// Evaluation seed (explicit or the 2024 default).
    pub seed: u64,
    /// Smoke-scale run?
    pub smoke: bool,
    /// Paper-scale run?
    pub full: bool,
}

/// The value following flag `name` in `std::env::args`, if present
/// (shared by the bench binaries' ad-hoc flags like `--out PATH`).
pub fn arg_after(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The seeded noisy PlayerWithCategory+Quarter table behind the
/// `profile_200_row_column` / `clean_column_end_to_end` micro-benches and
/// the `--bin regex` matcher A/B — one definition, so every harness
/// measures the same workload.
pub fn sample_noisy_table(seed: u64, rows: usize) -> datavinci_table::Table {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let spec = datavinci_corpus::TableSpec::new(
        rows,
        vec![
            datavinci_corpus::Flavor::PlayerWithCategory,
            datavinci_corpus::Flavor::Quarter,
        ],
    );
    let clean = spec.generate(&mut rng);
    let noise = datavinci_corpus::NoiseModel { cell_prob: 0.1 };
    let (dirty, _) = noise.corrupt_table(&mut rng, &clean);
    dirty
}

impl Cli {
    /// Parses `--smoke`, `--full`, `--seed N` from `std::env::args`.
    pub fn parse() -> Cli {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = datavinci_corpus::Scale {
            n_tables: 60,
            row_divisor: 2,
        };
        let mut full = false;
        let smoke = args.iter().any(|a| a == "--smoke");
        if smoke {
            scale = datavinci_corpus::Scale::smoke();
        }
        if args.iter().any(|a| a == "--full") {
            scale = datavinci_corpus::Scale::paper();
            full = true;
        }
        let explicit_seed = args
            .iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok());
        Cli {
            scale,
            explicit_seed,
            seed: explicit_seed.unwrap_or(2024),
            smoke,
            full,
        }
    }
}
