//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§4–§5).
//!
//! * [`metrics`] — detection precision/recall/F1, fire rate, certain/
//!   possible repair precision, repair-given-detection.
//! * [`runner`] — builds all systems with their training context and runs
//!   them over the four benchmarks; the Table-8 execution protocol.
//!
//! One binary per paper artifact: `table3` … `table10`, `fig7`. Each prints
//! the measured values next to the paper's, and accepts `--smoke`
//! (tiny), default (medium), or `--full` (paper-scale) sizing plus
//! `--seed N`. EXPERIMENTS.md records a reference run.

pub mod alloc_meter;
pub mod metrics;
pub mod report;
pub mod runner;

pub use metrics::{truth_rows, DetectionCounts, RepairCounts};
pub use runner::{ExecMode, ExecOutcome, Harness, SystemKind};

/// Shared CLI parsing for the table binaries.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// Benchmark scale.
    pub scale: datavinci_corpus::Scale,
    /// Evaluation seed.
    pub seed: u64,
    /// Paper-scale run?
    pub full: bool,
}

impl Cli {
    /// Parses `--smoke`, `--full`, `--seed N` from `std::env::args`.
    pub fn parse() -> Cli {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = datavinci_corpus::Scale {
            n_tables: 60,
            row_divisor: 2,
        };
        let mut full = false;
        if args.iter().any(|a| a == "--smoke") {
            scale = datavinci_corpus::Scale::smoke();
        }
        if args.iter().any(|a| a == "--full") {
            scale = datavinci_corpus::Scale::paper();
            full = true;
        }
        let seed = args
            .iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(2024);
        Cli { scale, seed, full }
    }
}
