//! Evaluation metrics (paper §5): detection precision/recall/F1, fire rate,
//! repair precision (certain / possible), and repair-given-detection.
//!
//! Generation-time ground truth replaces the paper's manual annotation:
//! a detection is a true positive when the cell was corrupted; a repair is
//! **certain-correct** when it reproduces the latent clean value exactly,
//! and **possible-correct** when it at least strictly reduces the distance
//! to the clean value (the mechanical analogue of "reasonable but not
//! uniquely determined").

use datavinci_core::{Detection, RepairSuggestion};
use datavinci_regex::levenshtein;
use datavinci_table::{CellRef, Table};
use serde::Serialize;

/// Confusion counts for detection on one column.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DetectionCounts {
    /// Detected and truly corrupted.
    pub tp: usize,
    /// Detected but clean.
    pub fp: usize,
    /// Corrupted but missed.
    pub fn_: usize,
    /// Cells in the column.
    pub cells: usize,
}

impl DetectionCounts {
    /// Scores one column's detections against the corrupted ground truth.
    pub fn score(detections: &[Detection], truth_rows: &[usize], n_rows: usize) -> Self {
        let tp = detections
            .iter()
            .filter(|d| truth_rows.contains(&d.row))
            .count();
        DetectionCounts {
            tp,
            fp: detections.len() - tp,
            fn_: truth_rows.len() - tp,
            cells: n_rows,
        }
    }

    /// Merges counts (micro-averaging).
    pub fn add(&mut self, other: &DetectionCounts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.cells += other.cells;
    }

    /// Precision in percent (100 when nothing was detected).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            100.0
        } else {
            100.0 * self.tp as f64 / denom as f64
        }
    }

    /// Recall in percent.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            100.0
        } else {
            100.0 * self.tp as f64 / denom as f64
        }
    }

    /// F1 in percent.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Average fraction of cells flagged, in percent (the paper's fire rate).
    pub fn fire_rate(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            100.0 * (self.tp + self.fp) as f64 / self.cells as f64
        }
    }
}

/// Repair outcome counts for one column.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RepairCounts {
    /// Suggestions made.
    pub suggested: usize,
    /// Exactly reproduced the clean value.
    pub certain_correct: usize,
    /// Strictly closer to the clean value (includes exact).
    pub possible_correct: usize,
    /// Suggestions on truly corrupted cells (correct detections).
    pub on_true_errors: usize,
    /// Exact repairs among `on_true_errors`.
    pub correct_on_true_errors: usize,
    /// Ground-truth errors in the column.
    pub truth: usize,
}

impl RepairCounts {
    /// Scores one column's repairs.
    pub fn score(
        repairs: &[RepairSuggestion],
        truth_rows: &[usize],
        clean: &Table,
        col: usize,
    ) -> Self {
        let mut out = RepairCounts {
            suggested: repairs.len(),
            truth: truth_rows.len(),
            ..Default::default()
        };
        for r in repairs {
            let clean_value = clean
                .cell(CellRef::new(col, r.row))
                .map(|v| v.render())
                .unwrap_or_default();
            let exact = r.repaired == clean_value;
            let improved = exact
                || levenshtein(&r.repaired, &clean_value) < levenshtein(&r.original, &clean_value);
            if exact {
                out.certain_correct += 1;
            }
            if improved {
                out.possible_correct += 1;
            }
            if truth_rows.contains(&r.row) {
                out.on_true_errors += 1;
                if exact {
                    out.correct_on_true_errors += 1;
                }
            }
        }
        out
    }

    /// Merges counts.
    pub fn add(&mut self, other: &RepairCounts) {
        self.suggested += other.suggested;
        self.certain_correct += other.certain_correct;
        self.possible_correct += other.possible_correct;
        self.on_true_errors += other.on_true_errors;
        self.correct_on_true_errors += other.correct_on_true_errors;
        self.truth += other.truth;
    }

    /// Certain repair precision in percent.
    pub fn precision_certain(&self) -> f64 {
        if self.suggested == 0 {
            100.0
        } else {
            100.0 * self.certain_correct as f64 / self.suggested as f64
        }
    }

    /// Possible repair precision in percent.
    pub fn precision_possible(&self) -> f64 {
        if self.suggested == 0 {
            100.0
        } else {
            100.0 * self.possible_correct as f64 / self.suggested as f64
        }
    }

    /// Repair recall vs injected errors, in percent (Table 6 Synthetic).
    pub fn recall(&self) -> f64 {
        if self.truth == 0 {
            100.0
        } else {
            100.0 * self.correct_on_true_errors as f64 / self.truth as f64
        }
    }

    /// F1 of certain precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision_certain();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Table 7: repair precision restricted to correctly detected errors.
    pub fn precision_given_detection(&self) -> f64 {
        if self.on_true_errors == 0 {
            100.0
        } else {
            100.0 * self.correct_on_true_errors as f64 / self.on_true_errors as f64
        }
    }
}

/// Truth rows (corrupted cells) for one column of a benchmark table.
pub fn truth_rows(corrupted: &[CellRef], col: usize) -> Vec<usize> {
    corrupted
        .iter()
        .filter(|c| c.col == col)
        .map(|c| c.row)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_table::Column;

    fn det(rows: &[usize]) -> Vec<Detection> {
        rows.iter()
            .map(|&row| Detection {
                row,
                value: String::new(),
            })
            .collect()
    }

    #[test]
    fn detection_counts() {
        let c = DetectionCounts::score(&det(&[1, 2, 3]), &[2, 3, 4], 10);
        assert_eq!(c.tp, 2);
        assert_eq!(c.fp, 1);
        assert_eq!(c.fn_, 1);
        assert!((c.precision() - 200.0 / 3.0).abs() < 1e-9);
        assert!((c.recall() - 200.0 / 3.0).abs() < 1e-9);
        assert!((c.fire_rate() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_detection_is_perfect_precision_zero_fire() {
        let c = DetectionCounts::score(&[], &[1], 10);
        assert_eq!(c.precision(), 100.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.fire_rate(), 0.0);
    }

    #[test]
    fn repair_scoring_certain_vs_possible() {
        let clean = Table::new(vec![Column::from_texts("c", &["Q1-22", "Q2-22", "Q3-22"])]);
        let repairs = vec![
            RepairSuggestion {
                row: 0,
                original: "Q122".into(),
                repaired: "Q1-22".into(), // exact
                candidates: vec![],
            },
            RepairSuggestion {
                row: 1,
                original: "Qx2-2x2".into(),
                repaired: "Q2-2x2".into(), // improved, not exact
                candidates: vec![],
            },
            RepairSuggestion {
                row: 2,
                original: "Q3-22".into(),
                repaired: "zzz".into(), // worse
                candidates: vec![],
            },
        ];
        let c = RepairCounts::score(&repairs, &[0, 1], &clean, 0);
        assert_eq!(c.certain_correct, 1);
        assert_eq!(c.possible_correct, 2);
        assert_eq!(c.on_true_errors, 2);
        assert_eq!(c.correct_on_true_errors, 1);
        assert!((c.precision_certain() - 100.0 / 3.0).abs() < 1e-9);
        assert!((c.precision_possible() - 200.0 / 3.0).abs() < 1e-9);
        assert!((c.precision_given_detection() - 50.0).abs() < 1e-9);
        assert!((c.recall() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn truth_row_extraction() {
        let corrupted = vec![CellRef::new(0, 3), CellRef::new(1, 5), CellRef::new(0, 9)];
        assert_eq!(truth_rows(&corrupted, 0), vec![3, 9]);
        assert_eq!(truth_rows(&corrupted, 1), vec![5]);
        assert!(truth_rows(&corrupted, 2).is_empty());
    }

    #[test]
    fn merging_is_additive() {
        let mut a = DetectionCounts::score(&det(&[1]), &[1], 5);
        let b = DetectionCounts::score(&det(&[0]), &[1], 5);
        a.add(&b);
        assert_eq!(a.tp, 1);
        assert_eq!(a.fp, 1);
        assert_eq!(a.fn_, 1);
        assert_eq!(a.cells, 10);
    }
}
