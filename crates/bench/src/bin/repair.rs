//! Repair benchmark: per-row reference vs distinct-value planner →
//! `BENCH_repair.json`.
//!
//! Measures the three layers the repair-planner refactor optimizes, each as
//! a live A/B against its per-row reference on identical inputs:
//!
//! 1. **repair** — `repair_analysis` on duplicate-heavy analyzed columns,
//!    `RepairStrategy::RowWise` vs the default `RepairStrategy::Planner`
//!    (edit programs, concretization, and ranking shared per distinct
//!    value);
//! 2. **abstraction** — `GazetteerLlm::mask_column_rowwise` (per-row
//!    gazetteer sweeps) vs `mask_column` (interned, weighted, memoized) on
//!    a duplicate-heavy semantic column;
//! 3. **end-to-end guard** — `clean_column` on the all-distinct 120-row
//!    micro-bench workload, proving the planner costs nothing when there is
//!    nothing to share (ROADMAP's `clean_120_rows` baseline).
//!
//! Every A/B asserts the two paths produce *identical* output (the
//! byte-identity guarantee CI relies on); the process exits non-zero if
//! they ever diverge. The ≥2× duplicate-heavy target is recorded as a
//! boolean, not asserted, so a loaded CI machine cannot flake the build.
//!
//! Flags: the shared `--smoke`/`--full`/`--seed N` sizing plus
//! `--out PATH` (default `BENCH_repair.json`).

use std::time::Instant;

use datavinci_bench::{arg_after, sample_noisy_table, Cli};
use datavinci_core::{ColumnAnalysis, DataVinci, DataVinciConfig, RepairPlan};
use datavinci_corpus::{Flavor, NoiseModel, TableSpec};
use datavinci_engine::json::Json;
use datavinci_semantic::GazetteerLlm;
use datavinci_table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Wall-clock of `iters` runs of `f`, in microseconds per iteration.
fn time_us<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let started = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    started.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// The duplicate-heavy workload: a small base table is corrupted, then
/// Zipf-expanded row-wise to the target size, so *every* value — erroneous
/// ones included — recurs with real multiplicity. This is the
/// systematic-error regime (one malformed upstream value emitted over and
/// over) the repair planner amortizes; row-level expansion also preserves
/// the Category ↔ Player-ID dependency the concretizer learns from.
fn duplicate_heavy_tables(seed: u64, n_tables: usize, rows: usize) -> Vec<Table> {
    let base_rows = (rows / 8).max(20);
    let mut rng = StdRng::seed_from_u64(seed);
    let noise = NoiseModel { cell_prob: 0.25 };
    (0..n_tables)
        .map(|_| {
            let spec = TableSpec::new(base_rows, vec![Flavor::PlayerWithCategory, Flavor::Quarter]);
            let clean = spec.generate(&mut rng);
            let (dirty, _) = noise.corrupt_table(&mut rng, &clean);
            // Expand: each output row copies a Zipf-ish (head-biased) base
            // row, duplicating whole rows rows/base_rows ≈ 8× on average.
            let picks: Vec<usize> = (0..rows)
                .map(|_| {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    ((base_rows as f64) * u * u) as usize
                })
                .collect();
            Table::new(
                dirty
                    .columns()
                    .iter()
                    .map(|col| {
                        let values: Vec<_> = picks
                            .iter()
                            .map(|&j| col.get(j).expect("base row in range").clone())
                            .collect();
                        datavinci_table::Column::new(col.name(), values)
                    })
                    .collect(),
            )
        })
        .collect()
}

fn main() {
    let cli = Cli::parse();
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_repair.json".to_string());
    // Sharing grows with rows (more duplicates per distinct value), so even
    // the smoke tier keeps tables big enough for the planner's ≥2× target
    // to be robust against machine noise.
    let (n_tables, rows, repair_iters, e2e_iters) = if cli.full {
        (6, 2000, 10, 40)
    } else if cli.smoke {
        (3, 1000, 4, 20)
    } else {
        (4, 1200, 6, 20)
    };

    let planner = DataVinci::new();
    let rowwise = DataVinci::with_config(DataVinciConfig::rowwise_repair());

    // 1. Repair A/B over duplicate-heavy analyzed columns. The analysis
    // phase is shared (it is identical under both strategies); only the
    // repair phase is timed.
    let tables = duplicate_heavy_tables(cli.seed, n_tables, rows);
    let min_text = planner.config().min_text_fraction;
    let mut analyses: Vec<(&Table, ColumnAnalysis)> = Vec::new();
    for table in &tables {
        for col in 0..table.n_cols() {
            let column = table.column(col).expect("in range");
            if column.text_fraction() < min_text {
                continue;
            }
            analyses.push((table, planner.analyze_column(table, col)));
        }
    }
    let n_errors: usize = analyses.iter().map(|(_, a)| a.error_rows.len()).sum();
    let n_groups: usize = analyses
        .iter()
        .map(|(_, a)| RepairPlan::build(a).n_groups())
        .sum();
    let sharing = n_errors as f64 / (n_groups.max(1)) as f64;
    eprintln!(
        "repair bench: {} tables, {} columns, {n_errors} error rows in {n_groups} groups \
         (sharing ×{sharing:.2})",
        tables.len(),
        analyses.len()
    );

    // Identity gate: planner reports must equal the per-row reports.
    for (table, analysis) in &analyses {
        let a = planner.repair_analysis(table, analysis);
        let b = rowwise.repair_analysis(table, analysis);
        assert_eq!(
            format!("{a:#?}"),
            format!("{b:#?}"),
            "planner diverged from the per-row reference (col {})",
            analysis.col
        );
    }
    let repair_rowwise_us = time_us(repair_iters, || {
        analyses
            .iter()
            .map(|(t, a)| rowwise.repair_analysis(t, a).repairs.len())
            .sum::<usize>()
    });
    let repair_planner_us = time_us(repair_iters, || {
        analyses
            .iter()
            .map(|(t, a)| planner.repair_analysis(t, a).repairs.len())
            .sum::<usize>()
    });
    let repair_speedup = repair_rowwise_us / repair_planner_us.max(1e-9);
    eprintln!(
        "  repair (dup-heavy)     rowwise {:8.1} µs   planner {:8.1} µs   ×{repair_speedup:.2}",
        repair_rowwise_us, repair_planner_us
    );

    // 2. Semantic abstraction A/B: one duplicate-heavy semantic column
    // through the masking model, per-row sweeps vs interned + memoized.
    // A fresh model per timed call keeps the memo cold — the honest
    // single-clean comparison (warm re-cleans only get faster).
    let sem_values: Vec<String> = tables
        .iter()
        .flat_map(|t| t.column(1).expect("Player ID").rendered())
        .take(300)
        .collect();
    let reference = GazetteerLlm::new().mask_column_rowwise(&sem_values);
    assert_eq!(
        GazetteerLlm::new().mask_column(&sem_values),
        reference,
        "pooled masking diverged from the per-row reference"
    );
    let abstraction_rowwise_us = time_us(repair_iters, || {
        GazetteerLlm::new().mask_column_rowwise(&sem_values).len()
    });
    let abstraction_pooled_us = time_us(repair_iters, || {
        GazetteerLlm::new().mask_column(&sem_values).len()
    });
    let abstraction_speedup = abstraction_rowwise_us / abstraction_pooled_us.max(1e-9);
    eprintln!(
        "  abstraction 300 values rowwise {:8.1} µs   pooled  {:8.1} µs   ×{abstraction_speedup:.2}",
        abstraction_rowwise_us, abstraction_pooled_us
    );

    // 3. End-to-end guard on all-distinct data: the 120-row noisy column
    // behind ROADMAP's `clean_120_rows` baseline (PR-3: 25.9 ms on the
    // reference container). The planner must not regress it.
    let e2e_table = sample_noisy_table(42, 120);
    let a = planner.clean_column(&e2e_table, 2);
    let b = rowwise.clean_column(&e2e_table, 2);
    assert_eq!(
        format!("{a:#?}"),
        format!("{b:#?}"),
        "end-to-end planner diverged from the per-row reference"
    );
    // Time the full clean (analysis + repair) under both strategies.
    let e2e_rowwise_ms = time_us(e2e_iters, || rowwise.clean_column(&e2e_table, 2).n_rows) / 1e3;
    let e2e_planner_ms = time_us(e2e_iters, || planner.clean_column(&e2e_table, 2).n_rows) / 1e3;
    let e2e_ratio = e2e_rowwise_ms / e2e_planner_ms.max(1e-9);
    eprintln!(
        "  clean 120 rows (distinct) rowwise {e2e_rowwise_ms:6.2} ms   planner {e2e_planner_ms:6.2} ms   \
         ×{e2e_ratio:.2}"
    );

    const BASELINE_E2E_MS: f64 = 25.9; // PR-3, 1-core reference container.
    let json = Json::obj()
        .field("benchmark", Json::str("repair_rowwise_vs_planner"))
        .field("seed", Json::Int(cli.seed as i64))
        .field(
            "baseline_context",
            Json::str("PR-3 clean_120_rows from the 1-core reference container (ROADMAP.md)"),
        )
        .field("n_tables", Json::Int(tables.len() as i64))
        .field("n_columns", Json::Int(analyses.len() as i64))
        .field("rows_per_table", Json::Int(rows as i64))
        .field("n_error_rows", Json::Int(n_errors as i64))
        .field("n_repair_groups", Json::Int(n_groups as i64))
        .field("sharing_factor", Json::Num(sharing))
        .field("repair_iters", Json::Int(repair_iters as i64))
        .field("repair_rowwise_us", Json::Num(repair_rowwise_us))
        .field("repair_planner_us", Json::Num(repair_planner_us))
        .field("repair_speedup", Json::Num(repair_speedup))
        .field("repair_target_2x_met", Json::Bool(repair_speedup >= 2.0))
        .field("abstraction_rowwise_us", Json::Num(abstraction_rowwise_us))
        .field("abstraction_pooled_us", Json::Num(abstraction_pooled_us))
        .field("abstraction_speedup", Json::Num(abstraction_speedup))
        .field("e2e_distinct_rowwise_ms", Json::Num(e2e_rowwise_ms))
        .field("e2e_distinct_planner_ms", Json::Num(e2e_planner_ms))
        .field("e2e_distinct_ratio", Json::Num(e2e_ratio))
        .field(
            "e2e_vs_pr3_baseline",
            Json::Num(BASELINE_E2E_MS / e2e_planner_ms.max(1e-9)),
        )
        .field("identical", Json::Bool(true));
    std::fs::write(&out_path, json.render_pretty()).expect("write benchmark JSON");
    println!("{}", json.render_pretty());
    eprintln!(
        "repair ×{repair_speedup:.2}, abstraction ×{abstraction_speedup:.2}, \
         e2e distinct ×{e2e_ratio:.2}; wrote {out_path}"
    );
}
