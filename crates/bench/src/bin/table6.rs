//! Regenerates paper Table 6: error-repair performance across datasets.

use datavinci_bench::report::{pct, print_table, PAPER_TABLE6};
use datavinci_bench::{Cli, Harness, SystemKind};
use datavinci_corpus::{excel_like, synthetic_errors, wikipedia_like};

fn main() {
    let cli = Cli::parse();
    eprintln!("building harness…");
    let harness = Harness::new(cli.seed ^ 0xBEEF);
    let wiki = wikipedia_like(cli.seed, cli.scale);
    let excel = excel_like(cli.seed + 1, cli.scale);
    let synth = synthetic_errors(cli.seed + 2, cli.scale);

    let mut rows = Vec::new();
    for kind in SystemKind::main_lineup() {
        eprintln!("  running {} …", kind.name());
        let w = harness.run_repair(kind, &wiki);
        let e = harness.run_repair(kind, &excel);
        let s = harness.run_repair(kind, &synth);
        rows.push(vec![
            kind.name().to_string(),
            pct(w.precision_certain()),
            pct(w.precision_possible()),
            pct(e.precision_certain()),
            pct(e.precision_possible()),
            pct(s.precision_certain()),
            pct(s.recall()),
            pct(s.f1()),
        ]);
    }
    print_table(
        "Table 6 — Error repair (measured)",
        &[
            "System",
            "Wiki Cert",
            "Wiki Poss",
            "Excel Cert",
            "Excel Poss",
            "Syn P*",
            "Syn R",
            "Syn F1*",
        ],
        &rows,
    );
    let paper_rows: Vec<Vec<String>> = PAPER_TABLE6
        .iter()
        .map(|r| {
            let f = |v: Option<f64>| v.map_or("–".to_string(), |x| format!("{x:.1}"));
            vec![
                r.0.to_string(),
                f(r.1),
                f(r.2),
                f(r.3),
                f(r.4),
                f(r.5),
                f(r.6),
                f(r.7),
            ]
        })
        .collect();
    print_table(
        "Table 6 — Error repair (paper)",
        &[
            "System",
            "Wiki Cert",
            "Wiki Poss",
            "Excel Cert",
            "Excel Poss",
            "Syn P*",
            "Syn R",
            "Syn F1*",
        ],
        &paper_rows,
    );
}
