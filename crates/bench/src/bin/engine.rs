//! Engine-vs-sequential end-to-end benchmark → `BENCH_engine.json`.
//!
//! Cleans the corpus benchmark tables (synthetic-errors + Wikipedia-like)
//! three ways — sequential `DataVinci::clean_table`, engine cold (parallel,
//! empty cache), engine warm (parallel, primed cache) — verifies the
//! engine's reports are byte-identical to the sequential ones, and records
//! wall times, speedups, and cache telemetry.
//!
//! Flags: the shared `--smoke`/`--full`/`--seed N` sizing plus
//! `--workers N` (default 4, the acceptance-criteria width; `0` = one per
//! hardware thread), `--scaling` (additionally record a cold-path
//! per-worker-count curve at 1/2/4/8 workers), and `--out PATH` (default
//! `BENCH_engine.json`).

use std::num::NonZeroUsize;
use std::time::Instant;

use datavinci_bench::{arg_after, Cli};
use datavinci_core::{DataVinci, TableReport};
use datavinci_corpus::{synthetic_errors, wikipedia_like, Scale};
use datavinci_engine::json::Json;
use datavinci_engine::{Engine, EngineConfig};
use datavinci_table::Table;

fn canon(report: &TableReport) -> String {
    format!("{report:#?}")
}

fn main() {
    let cli = Cli::parse();
    let workers: usize = arg_after("--workers")
        .and_then(|w| w.parse().ok())
        .unwrap_or(4);
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_engine.json".to_string());

    // The corpus benchmark tables: half dense synthetic errors, half sparse
    // Wikipedia-like, so both error regimes are in the timing.
    let scale = Scale {
        n_tables: cli.scale.n_tables.min(16) / 2,
        row_divisor: cli.scale.row_divisor,
    };
    let mut tables: Vec<Table> = synthetic_errors(cli.seed, scale)
        .tables
        .into_iter()
        .map(|t| t.dirty)
        .collect();
    tables.extend(
        wikipedia_like(cli.seed ^ 0xE147, scale)
            .tables
            .into_iter()
            .map(|t| t.dirty),
    );
    let n_columns: usize = tables.iter().map(Table::n_cols).sum();
    eprintln!(
        "engine bench: {} tables, {n_columns} columns, {workers} workers requested",
        tables.len()
    );

    // Sequential baseline.
    let dv = DataVinci::new();
    let started = Instant::now();
    let sequential: Vec<TableReport> = tables.iter().map(|t| dv.clean_table(t)).collect();
    let sequential_ms = started.elapsed().as_secs_f64() * 1000.0;
    eprintln!("  sequential            {sequential_ms:9.1} ms");

    // Engine, cold cache.
    let engine = Engine::with_config(EngineConfig {
        workers,
        cache: true,
        ..EngineConfig::default()
    });
    let started = Instant::now();
    let cold = engine.clean_batch(&tables);
    let cold_ms = started.elapsed().as_secs_f64() * 1000.0;
    eprintln!("  engine cold ({} workers) {cold_ms:9.1} ms", cold.workers);

    // Byte-identity against the sequential reports.
    let byte_identical = cold
        .tables
        .iter()
        .zip(&sequential)
        .all(|(engine_report, seq)| canon(&engine_report.table_report()) == canon(seq));
    assert!(
        byte_identical,
        "engine reports diverged from sequential cleaning"
    );

    // Engine, warm cache (unchanged tables: report hits only).
    let started = Instant::now();
    let warm = engine.clean_batch(&tables);
    let warm_ms = started.elapsed().as_secs_f64() * 1000.0;
    eprintln!("  engine warm           {warm_ms:9.1} ms");
    let stats = warm.cache;
    assert!(
        stats.report_hits > 0,
        "warm re-clean must be served from the cache"
    );

    let hardware_threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let cold_speedup = sequential_ms / cold_ms.max(1e-9);
    let warm_speedup = sequential_ms / warm_ms.max(1e-9);

    // `--scaling`: re-run the cold path at 1/2/4/8 workers (fresh engine
    // each time, so nothing is cached) and record the per-core curve. On a
    // single-hardware-thread machine the curve documents scheduling
    // overhead rather than speedup — that's the point of recording it.
    let scaling = std::env::args().any(|a| a == "--scaling");
    let mut scaling_points = Vec::new();
    if scaling {
        let mut one_worker_ms = None;
        for workers in [1usize, 2, 4, 8] {
            let engine = Engine::with_config(EngineConfig {
                workers,
                cache: true,
                ..EngineConfig::default()
            });
            let started = Instant::now();
            let run = engine.clean_batch(&tables);
            let ms = started.elapsed().as_secs_f64() * 1000.0;
            let identical = run
                .tables
                .iter()
                .zip(&sequential)
                .all(|(engine_report, seq)| canon(&engine_report.table_report()) == canon(seq));
            assert!(identical, "scaling run at {workers} workers diverged");
            let base = *one_worker_ms.get_or_insert(ms);
            eprintln!(
                "  scaling {workers} workers  {ms:9.1} ms   ×{:.2} vs 1 worker",
                base / ms.max(1e-9)
            );
            scaling_points.push(
                Json::obj()
                    .field("workers", Json::Int(run.workers as i64))
                    .field("cold_ms", Json::Num(ms))
                    .field("speedup_vs_1_worker", Json::Num(base / ms.max(1e-9))),
            );
        }
    }

    let json = Json::obj()
        .field("benchmark", Json::str("engine_end_to_end"))
        .field("seed", Json::Int(cli.seed as i64))
        .field("n_tables", Json::Int(tables.len() as i64))
        .field("n_columns", Json::Int(n_columns as i64))
        .field("workers", Json::Int(cold.workers as i64))
        .field("hardware_threads", Json::Int(hardware_threads as i64))
        .field("sequential_ms", Json::Num(sequential_ms))
        .field("engine_cold_ms", Json::Num(cold_ms))
        .field("engine_warm_ms", Json::Num(warm_ms))
        .field("cold_speedup", Json::Num(cold_speedup))
        .field("warm_speedup", Json::Num(warm_speedup))
        .field("byte_identical", Json::Bool(byte_identical))
        .field("cache", stats.to_json());
    let json = if scaling {
        json.field("scaling", Json::Arr(scaling_points))
    } else {
        json
    };
    std::fs::write(&out_path, json.render_pretty()).expect("write benchmark JSON");
    println!("{}", json.render_pretty());
    eprintln!(
        "cold ×{cold_speedup:.2}, warm ×{warm_speedup:.2} vs sequential \
         ({hardware_threads} hardware threads); wrote {out_path}"
    );
}
