//! Single-core hot-path A/B benchmark → `BENCH_hotpath.json`.
//!
//! Three A/B pairs, each asserting byte-identity between the legacy path
//! (kept in-tree as the differential oracle) and the overhauled one before
//! any timing is trusted:
//!
//! 1. **ingest** — char-loop CSV reference (`io::reference::parse_csv`)
//!    vs the zero-copy byte scanner (`io::parse_csv`);
//! 2. **dfa** — per-value token stepping (`matches_many`) vs the packed
//!    ASCII byte batch (`matches_many_ascii`) over the learned patterns of
//!    the shared noisy column;
//! 3. **scheduling** — arrival-order `WorkerPool::map` vs largest-first
//!    `map_sized` over a mixed-size column batch.
//!
//! It also re-times the two committed single-core baselines (end-to-end
//! 120-row column clean, 200-row column profile) and measures how much of
//! the workload's value population the ASCII fast path covers. Timings run
//! on the system allocator so they are comparable with the criterion micro
//! benches; the allocs/row discipline is asserted separately by the
//! `alloc_budget` test, which opts into the metering allocator.
//!
//! Flags: the shared `--smoke`/`--full`/`--seed N` sizing plus
//! `--out PATH` (default `BENCH_hotpath.json`).

use std::time::Instant;

use datavinci_bench::{arg_after, sample_noisy_table, Cli};
use datavinci_core::DataVinci;
use datavinci_engine::json::Json;
use datavinci_engine::WorkerPool;
use datavinci_profile::{profile_plain, MaskedPool, ProfilerConfig};
use datavinci_regex::{AsciiBatch, MaskedString};
use datavinci_table::{io, Table};

/// Wall-clock of `iters` runs of `f`, in microseconds per iteration.
fn time_us<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let started = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    started.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    let cli = Cli::parse();
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let iters = if cli.full {
        400
    } else if cli.smoke {
        20
    } else {
        100
    };

    // ── 1. Ingest: reference char loop vs zero-copy byte scanner ─────────
    let ingest_table = sample_noisy_table(cli.seed.wrapping_mul(31), 400);
    let csv = io::to_csv(&ingest_table);
    let reference = io::reference::parse_csv(&csv).expect("reference parse");
    let zero_copy = io::parse_csv(&csv).expect("zero-copy parse");
    let ingest_identical = io::to_csv(&reference) == io::to_csv(&zero_copy);
    assert!(
        ingest_identical,
        "zero-copy CSV reader diverged from the char-loop reference"
    );
    let reference_us = time_us(iters, || io::reference::parse_csv(&csv).expect("parses"));
    let zero_copy_us = time_us(iters, || io::parse_csv(&csv).expect("parses"));
    let ingest_speedup = reference_us / zero_copy_us.max(1e-9);
    eprintln!(
        "  ingest {} B    reference {reference_us:9.1} µs   zero-copy {zero_copy_us:9.1} µs   ×{ingest_speedup:.2}",
        csv.len()
    );

    // ── 2. DFA: per-value token stepping vs packed ASCII batch ───────────
    let table = sample_noisy_table(42, 200);
    let values: Vec<String> = table.column(2).expect("column 2").rendered();
    let masked: Vec<MaskedString> = values.iter().map(|v| MaskedString::from_plain(v)).collect();
    let batch = AsciiBatch::from_values(&masked).expect("noisy column is plain ASCII");
    let profile = profile_plain(&values, &ProfilerConfig::default());
    assert!(
        !profile.patterns.is_empty(),
        "profiling the shared column must learn patterns"
    );
    let compiled: Vec<_> = profile.patterns.iter().map(|lp| &lp.compiled).collect();
    for c in &compiled {
        assert_eq!(
            c.matches_many(&masked),
            c.matches_many_ascii(&batch),
            "ASCII batch path diverged from the token path for {}",
            c.pattern()
        );
    }
    let dfa_iters = iters * 4;
    let token_us = time_us(dfa_iters, || {
        compiled
            .iter()
            .map(|c| c.matches_many(&masked).iter().filter(|&&b| b).count())
            .sum::<usize>()
    });
    let ascii_us = time_us(dfa_iters, || {
        compiled
            .iter()
            .map(|c| c.matches_many_ascii(&batch).iter().filter(|&&b| b).count())
            .sum::<usize>()
    });
    let dfa_speedup = token_us / ascii_us.max(1e-9);
    eprintln!(
        "  dfa {} pat × {} val   token {token_us:9.1} µs   ascii {ascii_us:9.1} µs   ×{dfa_speedup:.2}",
        compiled.len(),
        masked.len()
    );

    // ASCII fast-path coverage: fraction of the workload's values living in
    // columns whose distinct set packs into an `AsciiBatch`.
    let coverage_table = sample_noisy_table(42, 120);
    let (mut covered, mut total) = (0usize, 0usize);
    for col in 0..coverage_table.n_cols() {
        let vals: Vec<String> = coverage_table.column(col).expect("in range").rendered();
        let m: Vec<MaskedString> = vals.iter().map(|v| MaskedString::from_plain(v)).collect();
        total += m.len();
        if MaskedPool::new(&m).ascii_packed() {
            covered += m.len();
        }
    }
    let ascii_coverage_pct = 100.0 * covered as f64 / total.max(1) as f64;
    eprintln!("  ascii coverage        {ascii_coverage_pct:9.1} %   ({covered}/{total} values)");

    // ── 3. Scheduling: arrival order vs largest-first ────────────────────
    let dv = DataVinci::new();
    let unit_rows: [usize; 8] = [360, 40, 40, 40, 240, 40, 40, 120];
    let units: Vec<Table> = unit_rows
        .iter()
        .enumerate()
        .map(|(i, &rows)| sample_noisy_table(cli.seed.wrapping_add(i as u64), rows))
        .collect();
    let sizes: Vec<usize> = units.iter().map(Table::n_rows).collect();
    let pool = WorkerPool::new(4);
    let canon = |reports: &[datavinci_core::ColumnReport]| -> String {
        reports
            .iter()
            .map(|r| format!("{r:#?}"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let by_arrival = pool.map(&units, |_, t| dv.clean_column(t, 2));
    let by_size = pool.map_sized(&units, &sizes, |_, t| dv.clean_column(t, 2));
    let scheduling_identical = canon(&by_arrival) == canon(&by_size);
    assert!(
        scheduling_identical,
        "size-aware scheduling changed the batch's reports"
    );
    let sched_iters = (iters / 10).max(3);
    let map_ms = time_us(sched_iters, || {
        pool.map(&units, |_, t| dv.clean_column(t, 2)).len()
    }) / 1000.0;
    let map_sized_ms = time_us(sched_iters, || {
        pool.map_sized(&units, &sizes, |_, t| dv.clean_column(t, 2))
            .len()
    }) / 1000.0;
    eprintln!(
        "  scheduling {} units    arrival {map_ms:9.2} ms   largest-first {map_sized_ms:9.2} ms",
        units.len()
    );

    // ── 4. Committed single-core baselines ───────────────────────────────
    let e2e_table = sample_noisy_table(42, 120);
    let clean_120_ms = time_us(iters, || dv.clean_column(&e2e_table, 2)) / 1000.0;
    let profile_200_ms =
        time_us(iters, || profile_plain(&values, &ProfilerConfig::default())) / 1000.0;
    eprintln!(
        "  e2e clean 120 rows    {clean_120_ms:9.2} ms   (baseline 3.00 ms)\n  \
         profile 200-row col   {profile_200_ms:9.2} ms   (baseline 0.52 ms)"
    );

    let json = Json::obj()
        .field("benchmark", Json::str("single_core_hotpath"))
        .field("seed", Json::Int(cli.seed as i64))
        .field("iters", Json::Int(iters as i64))
        .field(
            "ingest",
            Json::obj()
                .field("rows", Json::Int(ingest_table.n_rows() as i64))
                .field("bytes", Json::Int(csv.len() as i64))
                .field("reference_us", Json::Num(reference_us))
                .field("zero_copy_us", Json::Num(zero_copy_us))
                .field("speedup", Json::Num(ingest_speedup))
                .field("identical", Json::Bool(ingest_identical)),
        )
        .field(
            "dfa",
            Json::obj()
                .field("n_patterns", Json::Int(compiled.len() as i64))
                .field("n_values", Json::Int(masked.len() as i64))
                .field("token_us", Json::Num(token_us))
                .field("ascii_batch_us", Json::Num(ascii_us))
                .field("speedup", Json::Num(dfa_speedup))
                .field("ascii_coverage_pct", Json::Num(ascii_coverage_pct))
                .field("identical", Json::Bool(true)),
        )
        .field(
            "scheduling",
            Json::obj()
                .field("n_units", Json::Int(units.len() as i64))
                .field("arrival_order_ms", Json::Num(map_ms))
                .field("largest_first_ms", Json::Num(map_sized_ms))
                .field("identical", Json::Bool(scheduling_identical)),
        )
        .field(
            "single_core",
            Json::obj()
                .field("clean_120_rows_ms", Json::Num(clean_120_ms))
                .field("clean_120_rows_baseline_ms", Json::Num(3.0))
                .field("clean_improved", Json::Bool(clean_120_ms < 3.0))
                .field("profile_200_row_column_ms", Json::Num(profile_200_ms))
                .field("profile_200_row_column_baseline_ms", Json::Num(0.52))
                .field("profile_improved", Json::Bool(profile_200_ms < 0.52))
                .field(
                    "baseline_context",
                    Json::str(
                        "committed baselines were recorded under different container \
                         load; the pre-overhaul tree re-measures at ~3.7 ms / ~0.67 ms \
                         on the same machine as this run — the A/B pairs above, which \
                         share one process and one load state, carry the comparison",
                    ),
                ),
        );
    std::fs::write(&out_path, json.render_pretty()).expect("write benchmark JSON");
    println!("{}", json.render_pretty());
    eprintln!(
        "ingest ×{ingest_speedup:.2}, dfa ×{dfa_speedup:.2}, e2e {clean_120_ms:.2} ms; wrote {out_path}"
    );
}
