//! Telemetry overhead A/B benchmark → `BENCH_telemetry.json`.
//!
//! Cleans the shared 120-row noisy sample table end-to-end with telemetry
//! disabled and enabled (interleaved, fresh cold-cache engine per
//! iteration), asserts the two modes produce byte-identical reports and
//! repaired CSV, and gates two overhead numbers:
//!
//! * **enabled** — median enabled vs median disabled wall time, must stay
//!   within 8%: recording spans/counters into a thread-local collector is
//!   allowed to cost something, but not to distort what it measures.
//! * **disabled** — the cost of the instrumentation points when nothing
//!   listens. A dead record call is one relaxed atomic load and a branch;
//!   that per-call cost is measured directly in a tight loop, multiplied
//!   by the number of record events an enabled clean actually produces
//!   (an overestimate of the dead calls, since enabled runs record
//!   everything), and must stay within 2% of the clean itself.
//!
//! Flags: the shared `--smoke`/`--full`/`--seed N` sizing plus
//! `--out PATH` (default `BENCH_telemetry.json`).

use std::time::Instant;

use datavinci_bench::{arg_after, sample_noisy_table, Cli};
use datavinci_core::DataVinci;
use datavinci_engine::json::Json;
use datavinci_engine::{Engine, EngineConfig};
use datavinci_table::io;
use datavinci_telemetry::{counter, span, SpanNode, TaskProfile};

const ROWS: usize = 120;
const ENABLED_GATE_PCT: f64 = 8.0;
const DISABLED_GATE_PCT: f64 = 2.0;

fn engine(telemetry: bool) -> Engine {
    Engine::with_system(
        DataVinci::new(),
        EngineConfig {
            workers: 1,
            cache: true,
            telemetry,
            ..EngineConfig::default()
        },
    )
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn span_events(nodes: &[SpanNode]) -> u64 {
    nodes
        .iter()
        .map(|n| n.count + span_events(&n.children))
        .sum()
}

/// Record events one enabled clean produces: span open+close pairs plus one
/// per counter/gauge/histogram touch (counter keys × span count is a crude
/// proxy for repeat calls, so this leans high — which only tightens the
/// disabled-overhead bound).
fn record_events(profile: &TaskProfile) -> u64 {
    let spans = span_events(&profile.spans);
    let metrics = &profile.metrics;
    let touches = (metrics.counters.len() + metrics.gauges.len() + metrics.histograms.len()) as u64;
    2 * spans + touches * spans.max(1)
}

/// Per-call cost of a dead instrumentation point (no collector anywhere):
/// one relaxed load + branch, measured over a million calls.
fn disabled_call_ns() -> f64 {
    const CALLS: u32 = 1_000_000;
    let started = Instant::now();
    for i in 0..CALLS {
        counter("bench.dead", u64::from(i & 1));
        let _span = span("bench.dead_span");
    }
    // Each loop iteration exercises one dead counter and one dead span
    // guard (construction + drop): three short-circuit checks total.
    started.elapsed().as_secs_f64() * 1e9 / f64::from(3 * CALLS)
}

fn main() {
    let cli = Cli::parse();
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_telemetry.json".to_string());
    let iters = if cli.smoke { 16 } else { 40 };

    let table = sample_noisy_table(cli.seed, ROWS);
    eprintln!(
        "telemetry bench: {} rows × {} cols, {iters} interleaved iterations per mode",
        table.n_rows(),
        table.n_cols()
    );

    // Identity: both modes must clean to byte-identical reports and CSV.
    let off = engine(false).clean_table(&table);
    let on = engine(true).clean_table(&table);
    let identical = format!("{:#?}", off.table_report()) == format!("{:#?}", on.table_report())
        && io::to_csv(&Engine::apply(&table, &off.table_report()))
            == io::to_csv(&Engine::apply(&table, &on.table_report()));
    assert!(identical, "telemetry changed cleaning output");
    let profile = on.telemetry.as_ref().expect("telemetry enabled");
    let events = record_events(profile);

    // Interleaved A/B timing, fresh cold-cache engine per iteration.
    let mut disabled_ms = Vec::with_capacity(iters);
    let mut enabled_ms = Vec::with_capacity(iters);
    for _ in 0..iters {
        let e = engine(false);
        let started = Instant::now();
        let report = e.clean_table(&table);
        disabled_ms.push(started.elapsed().as_secs_f64() * 1e3);
        assert!(report.telemetry.is_none());

        let e = engine(true);
        let started = Instant::now();
        let report = e.clean_table(&table);
        enabled_ms.push(started.elapsed().as_secs_f64() * 1e3);
        assert!(report.telemetry.is_some());
    }
    let disabled_median = median(&mut disabled_ms);
    let enabled_median = median(&mut enabled_ms);
    let enabled_overhead_pct =
        ((enabled_median - disabled_median) / disabled_median * 100.0).max(0.0);

    let per_call_ns = disabled_call_ns();
    let disabled_overhead_pct = events as f64 * per_call_ns / (disabled_median * 1e6) * 100.0;

    eprintln!("  disabled median  {disabled_median:8.3} ms");
    eprintln!("  enabled median   {enabled_median:8.3} ms  (+{enabled_overhead_pct:.2}%)");
    eprintln!(
        "  dead call        {per_call_ns:8.2} ns × {events} events = {disabled_overhead_pct:.3}% \
         of a disabled clean"
    );
    assert!(
        enabled_overhead_pct <= ENABLED_GATE_PCT,
        "enabled telemetry overhead {enabled_overhead_pct:.2}% exceeds {ENABLED_GATE_PCT}%"
    );
    assert!(
        disabled_overhead_pct <= DISABLED_GATE_PCT,
        "disabled instrumentation overhead {disabled_overhead_pct:.3}% exceeds {DISABLED_GATE_PCT}%"
    );

    let json = Json::obj()
        .field("benchmark", Json::str("telemetry_overhead"))
        .field("seed", Json::Int(cli.seed as i64))
        .field("rows", Json::Int(table.n_rows() as i64))
        .field("iterations", Json::Int(iters as i64))
        .field("byte_identical", Json::Bool(identical))
        .field("disabled_median_ms", Json::Num(disabled_median))
        .field("enabled_median_ms", Json::Num(enabled_median))
        .field("enabled_overhead_pct", Json::Num(enabled_overhead_pct))
        .field("enabled_gate_pct", Json::Num(ENABLED_GATE_PCT))
        .field("disabled_call_ns", Json::Num(per_call_ns))
        .field("record_events_per_clean", Json::Int(events as i64))
        .field("disabled_overhead_pct", Json::Num(disabled_overhead_pct))
        .field("disabled_gate_pct", Json::Num(DISABLED_GATE_PCT));
    std::fs::write(&out_path, json.render_pretty()).expect("write benchmark JSON");
    println!("{}", json.render_pretty());
    eprintln!("wrote {out_path}");
}
