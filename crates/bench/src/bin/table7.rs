//! Regenerates paper Table 7: repair precision on correctly detected errors.

use datavinci_bench::report::{pct, print_table, PAPER_TABLE7};
use datavinci_bench::{Cli, Harness, SystemKind};
use datavinci_corpus::{excel_like, synthetic_errors, wikipedia_like};

fn main() {
    let cli = Cli::parse();
    eprintln!("building harness…");
    let harness = Harness::new(cli.seed ^ 0xBEEF);
    let wiki = wikipedia_like(cli.seed, cli.scale);
    let excel = excel_like(cli.seed + 1, cli.scale);
    let synth = synthetic_errors(cli.seed + 2, cli.scale);

    let mut rows = Vec::new();
    for kind in SystemKind::main_lineup() {
        eprintln!("  running {} …", kind.name());
        let w = harness.run_repair(kind, &wiki);
        let e = harness.run_repair(kind, &excel);
        let s = harness.run_repair(kind, &synth);
        rows.push(vec![
            kind.name().to_string(),
            pct(w.precision_given_detection()),
            pct(e.precision_given_detection()),
            pct(s.precision_given_detection()),
        ]);
    }
    print_table(
        "Table 7 — Repair precision given correct detection (measured)",
        &["System", "Wikipedia", "Excel", "Synthetic"],
        &rows,
    );
    let paper_rows: Vec<Vec<String>> = PAPER_TABLE7
        .iter()
        .map(|r| {
            let f = |v: Option<f64>| v.map_or("–".to_string(), |x| format!("{x:.1}"));
            vec![r.0.to_string(), f(r.1), f(r.2), f(r.3)]
        })
        .collect();
    print_table(
        "Table 7 — Repair precision given correct detection (paper)",
        &["System", "Wikipedia", "Excel", "Synthetic"],
        &paper_rows,
    );
}
