//! Streaming benchmark: chunked `StreamCleaner` vs the batch engine →
//! `BENCH_stream.json`.
//!
//! Drives a stationary cyclic stream (the seeded noisy sample table's rows,
//! repeated cycle after cycle) through three arms:
//!
//! 1. **identity** — an unbounded-window stream over the finite input must
//!    emit output *byte-identical* to batch-cleaning the same rows in one
//!    call (asserted; non-zero exit on divergence — the gate CI relies on);
//! 2. **boundedness** — a *windowed* stream is metered with the peak-heap
//!    allocator over N rows and over 5N rows at fixed chunk + window; the
//!    peak must not grow with the total row count (ratio asserted ≤ 1.5);
//! 3. **contrast** — batch-cleaning the full 5N-row table in one call,
//!    whose peak necessarily scales with the input, recorded alongside.
//!
//! Throughput (rows/s at the fixed chunk size) is recorded, not asserted,
//! so a loaded CI machine cannot flake the build.
//!
//! Flags: the shared `--smoke`/`--full`/`--seed N` sizing plus
//! `--out PATH` (default `BENCH_stream.json`).

use std::time::Instant;

use datavinci_bench::alloc_meter::{peak_bytes, reset_peak, MeteredAlloc};
use datavinci_bench::{arg_after, sample_noisy_table, Cli};
use datavinci_engine::{json::Json, Engine, StreamCleaner, StreamConfig};
use datavinci_table::{io, CellValue, Table};

#[global_allocator]
static ALLOC: MeteredAlloc = MeteredAlloc;

fn headers_of(table: &Table) -> Vec<String> {
    table.headers().iter().map(|h| h.to_string()).collect()
}

fn rows_of(table: &Table) -> Vec<Vec<String>> {
    (0..table.n_rows())
        .map(|r| {
            table
                .columns()
                .iter()
                .map(|c| c.get(r).map(CellValue::render).unwrap_or_default())
                .collect()
        })
        .collect()
}

/// One metered windowed-stream run: `cycles` cycles pushed chunk-per-cycle.
/// Emitted CSV is drained per chunk (only its length is kept) so the
/// measurement sees the cleaner's residency, not an accumulating output
/// buffer.
struct StreamRun {
    n_rows: usize,
    bytes_emitted: usize,
    n_repairs: usize,
    rows_per_s: f64,
    peak_bytes: usize,
}

fn run_windowed(
    header: &[String],
    cycle: &[Vec<String>],
    cycles: usize,
    window: usize,
) -> StreamRun {
    reset_peak();
    let started = Instant::now();
    let cfg = StreamConfig {
        workers: 1,
        window_rows: window,
        ..StreamConfig::default()
    };
    let mut cleaner = StreamCleaner::new(header, cfg);
    let mut bytes_emitted = cleaner.csv_header().len();
    for _ in 0..cycles {
        let out = cleaner.push_rows(cycle);
        bytes_emitted += std::hint::black_box(out.csv.len());
    }
    let elapsed = started.elapsed().as_secs_f64();
    StreamRun {
        n_rows: cleaner.n_rows(),
        bytes_emitted,
        n_repairs: cleaner.n_repairs(),
        rows_per_s: cleaner.n_rows() as f64 / elapsed.max(1e-9),
        peak_bytes: peak_bytes(),
    }
}

fn main() {
    let cli = Cli::parse();
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_stream.json".to_string());
    // The cycle is fixed across tiers: identity requires the per-chunk
    // value statistics to cross the same significance thresholds as the
    // whole stream's (scaled counts can cross absolute minimums), which
    // this seeded 40-row cycle does. Tiers scale the metered stream
    // length — the thing the boundedness arm is about.
    let (cycle_rows, base_cycles) = if cli.full {
        (40, 60)
    } else if cli.smoke {
        (40, 8)
    } else {
        (40, 20)
    };

    let table = sample_noisy_table(cli.seed, cycle_rows);
    let header = headers_of(&table);
    let cycle = rows_of(&table);
    let window = 2 * cycle.len();

    // ── Arm 1: identity. Unbounded-window streaming over the finite input
    // must match the batch clean of the identical rows byte for byte.
    let identity_cycles = 3;
    let mut cleaner = StreamCleaner::new(&header, StreamConfig::default());
    let mut streamed = cleaner.csv_header();
    let mut all_rows = Vec::new();
    for _ in 0..identity_cycles {
        all_rows.extend(cycle.iter().cloned());
        streamed.push_str(&cleaner.push_rows(&cycle).csv);
    }
    let batch_table = io::rows_to_table(&header, &all_rows);
    let engine = Engine::new();
    let report = engine.clean_table(&batch_table);
    let batch = io::to_csv(&Engine::apply(&batch_table, &report.table_report()));
    assert!(
        streamed == batch,
        "streamed output diverged from batch on stationary input \
         ({} streamed bytes vs {} batch bytes)",
        streamed.len(),
        batch.len()
    );
    eprintln!(
        "stream bench: identity over {} rows ({} cycles × {} rows) OK, {} repairs",
        all_rows.len(),
        identity_cycles,
        cycle.len(),
        cleaner.n_repairs()
    );
    drop((streamed, batch, batch_table, cleaner, all_rows));

    // ── Arm 2: boundedness. Same chunk and window; 5× the rows must not
    // move the peak.
    let _warmup = run_windowed(&header, &cycle, 2, window);
    let run_n = run_windowed(&header, &cycle, base_cycles, window);
    let run_5n = run_windowed(&header, &cycle, 5 * base_cycles, window);
    let peak_ratio = run_5n.peak_bytes as f64 / run_n.peak_bytes.max(1) as f64;
    eprintln!(
        "  windowed  N={:5} rows  peak {:8} B  {:8.0} rows/s",
        run_n.n_rows, run_n.peak_bytes, run_n.rows_per_s
    );
    eprintln!(
        "  windowed 5N={:5} rows  peak {:8} B  {:8.0} rows/s  (peak ×{peak_ratio:.3})",
        run_5n.n_rows, run_5n.peak_bytes, run_5n.rows_per_s
    );
    assert!(
        peak_ratio <= 1.5,
        "peak allocation grew with stream length (×{peak_ratio:.3}); \
         the window bound is broken"
    );

    // ── Arm 3: contrast — batch peak over the 5N input scales with it.
    reset_peak();
    let mut big_rows = Vec::new();
    for _ in 0..5 * base_cycles {
        big_rows.extend(cycle.iter().cloned());
    }
    let big = io::rows_to_table(&header, &big_rows);
    let big_report = Engine::new().clean_table(&big);
    let batch_bytes = io::to_csv(&Engine::apply(&big, &big_report.table_report())).len();
    let batch_peak = peak_bytes();
    eprintln!(
        "  batch    5N={:5} rows  peak {:8} B  ({} output bytes)",
        big.n_rows(),
        batch_peak,
        batch_bytes
    );

    let json = Json::obj()
        .field("benchmark", Json::str("stream_vs_batch"))
        .field("seed", Json::Int(cli.seed as i64))
        .field("cycle_rows", Json::Int(cycle.len() as i64))
        .field("n_cols", Json::Int(header.len() as i64))
        .field("chunk_rows", Json::Int(cycle.len() as i64))
        .field("window_rows", Json::Int(window as i64))
        .field(
            "identity_rows",
            Json::Int((identity_cycles * cycle.len()) as i64),
        )
        .field("identical", Json::Bool(true))
        .field(
            "stream_n",
            Json::obj()
                .field("n_rows", Json::Int(run_n.n_rows as i64))
                .field("rows_per_s", Json::Num(run_n.rows_per_s))
                .field("peak_bytes", Json::Int(run_n.peak_bytes as i64))
                .field("bytes_emitted", Json::Int(run_n.bytes_emitted as i64))
                .field("n_repairs", Json::Int(run_n.n_repairs as i64)),
        )
        .field(
            "stream_5n",
            Json::obj()
                .field("n_rows", Json::Int(run_5n.n_rows as i64))
                .field("rows_per_s", Json::Num(run_5n.rows_per_s))
                .field("peak_bytes", Json::Int(run_5n.peak_bytes as i64))
                .field("bytes_emitted", Json::Int(run_5n.bytes_emitted as i64))
                .field("n_repairs", Json::Int(run_5n.n_repairs as i64)),
        )
        .field("peak_ratio_5n_over_n", Json::Num(peak_ratio))
        .field("peak_bounded", Json::Bool(peak_ratio <= 1.5))
        .field("batch_5n_peak_bytes", Json::Int(batch_peak as i64))
        .field(
            "batch_peak_over_stream_peak",
            Json::Num(batch_peak as f64 / run_5n.peak_bytes.max(1) as f64),
        );
    std::fs::write(&out_path, json.render_pretty()).expect("write benchmark JSON");
    println!("{}", json.render_pretty());
    eprintln!("stream identity OK, peak ×{peak_ratio:.3} at 5N; wrote {out_path}");
}
