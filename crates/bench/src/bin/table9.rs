//! Regenerates paper Table 9: DataVinci ablations on the synthetic
//! benchmark.

use datavinci_bench::report::{pct, print_table, PAPER_TABLE9};
use datavinci_bench::{Cli, Harness, SystemKind};
use datavinci_corpus::synthetic_errors;

fn main() {
    let cli = Cli::parse();
    eprintln!("building harness…");
    let harness = Harness::new(cli.seed ^ 0xBEEF);
    let synth = synthetic_errors(cli.seed + 2, cli.scale);

    let mut rows = Vec::new();
    for kind in SystemKind::ablation_lineup() {
        eprintln!("  running {} …", kind.name());
        let s = harness.run_repair(kind, &synth);
        rows.push(vec![
            kind.name().to_string(),
            pct(s.precision_certain()),
            pct(s.recall()),
            pct(s.f1()),
        ]);
    }
    print_table(
        "Table 9 — Ablations: repair on Synthetic (measured)",
        &["Model", "Precision", "Recall", "F1"],
        &rows,
    );
    let paper_rows: Vec<Vec<String>> = PAPER_TABLE9
        .iter()
        .map(|r| {
            vec![
                r.0.to_string(),
                format!("{:.1}", r.1),
                format!("{:.1}", r.2),
                format!("{:.1}", r.3),
            ]
        })
        .collect();
    print_table(
        "Table 9 — Ablations (paper)",
        &["Model", "Precision", "Recall", "F1"],
        &paper_rows,
    );
}
