//! Regenerates paper Table 8: execution success on the Excel-Formulas
//! benchmark (single- vs multi-column; formula- and cell-level).

use datavinci_bench::report::{pct, print_table, PAPER_TABLE8};
use datavinci_bench::{Cli, ExecMode, Harness, SystemKind};
use datavinci_corpus::formula_benchmark;

fn main() {
    let cli = Cli::parse();
    eprintln!("building harness…");
    let harness = Harness::new(cli.seed ^ 0xBEEF);
    let (n_single, n_multi) = if cli.full { (720, 380) } else { (40, 20) };
    let cases = formula_benchmark(cli.seed + 3, n_single, n_multi);
    let single: Vec<_> = cases.iter().filter(|c| !c.multi_column).cloned().collect();
    let multi: Vec<_> = cases.iter().filter(|c| c.multi_column).cloned().collect();

    // HoloClean is excluded per the paper (did not finish in 24h there;
    // kept out here for comparability).
    let modes = [
        ("No Repair", ExecMode::NoRepair),
        ("WMRR", ExecMode::System(SystemKind::Wmrr)),
        ("Raha + GPT-3.5", ExecMode::System(SystemKind::Raha)),
        ("T5", ExecMode::System(SystemKind::T5)),
        (
            "DataVinci Unsupervised",
            ExecMode::System(SystemKind::DataVinci),
        ),
        ("DataVinci + Execution", ExecMode::DataVinciExecGuided),
    ];
    let mut rows = Vec::new();
    for (name, mode) in modes {
        eprintln!("  running {name} …");
        let s = harness.run_execution(mode, &single);
        let m = harness.run_execution(mode, &multi);
        rows.push(vec![
            name.to_string(),
            pct(s.formula_success),
            pct(s.cell_success),
            pct(m.formula_success),
            pct(m.cell_success),
        ]);
    }
    print_table(
        "Table 8 — Execution success after repair (measured)",
        &[
            "Type",
            "1-col Formula",
            "1-col Cell",
            "N-col Formula",
            "N-col Cell",
        ],
        &rows,
    );
    let paper_rows: Vec<Vec<String>> = PAPER_TABLE8
        .iter()
        .map(|r| {
            vec![
                r.0.to_string(),
                format!("{:.1}", r.1),
                format!("{:.1}", r.2),
                format!("{:.1}", r.3),
                format!("{:.1}", r.4),
            ]
        })
        .collect();
    print_table(
        "Table 8 — Execution success after repair (paper)",
        &[
            "Type",
            "1-col Formula",
            "1-col Cell",
            "N-col Formula",
            "N-col Cell",
        ],
        &paper_rows,
    );
}
