//! Warm-start benchmark: cold clean vs warm-from-disk restart vs daemon
//! round-trip → `BENCH_store.json`.
//!
//! The durable artifact store's promise is that a *process restart* costs
//! almost nothing: the next `datavinci-clean --store DIR` (or the next
//! daemon boot) reloads fingerprint-keyed artifacts and serves the clean
//! from cache. This benchmark drives the 120-row end-to-end workload
//! (`sample_noisy_table(42, 120)`, the same table the hot-path and alloc
//! budgets measure) through three arms on identical inputs:
//!
//! 1. **cold** — a fresh engine per iteration, no store: full pipeline.
//! 2. **warm** — a fresh engine per iteration that attaches a pre-seeded
//!    store: load-from-disk + cache-served clean (the restart path).
//! 3. **serve** — a round-trip through a live `datavinci-serve` daemon
//!    (in-process, TCP on an ephemeral port) with a warm tenant cache:
//!    socket + JSON framing + cache-served clean.
//!
//! Every A/B pair is identity-asserted (byte-identical reports and
//! repaired CSV; non-zero exit on divergence), including four concurrent
//! daemon clients. The ≥×5 warm-vs-cold acceptance target is recorded as
//! a boolean, not asserted, so a loaded CI machine cannot flake the build.
//!
//! Flags: the shared `--smoke`/`--full`/`--seed N` sizing plus
//! `--out PATH` (default `BENCH_store.json`).

use std::time::Instant;

use datavinci_bench::{arg_after, sample_noisy_table, Cli};
use datavinci_engine::json::Json;
use datavinci_engine::serve::roundtrip;
use datavinci_engine::{ArtifactStore, Engine, EngineConfig, Server, ServerConfig};
use datavinci_table::{io, Table};

/// Wall-clock of `iters` runs of `f`, in microseconds per iteration.
fn time_us<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let started = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    started.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn fresh_engine() -> Engine {
    Engine::with_config(EngineConfig {
        workers: 1,
        cache: true,
        ..EngineConfig::default()
    })
}

/// One cold clean: fresh engine, no store.
fn clean_cold(table: &Table) -> (String, String) {
    let engine = fresh_engine();
    let report = engine.clean_table(table);
    let table_report = report.table_report();
    (
        format!("{table_report:#?}"),
        io::to_csv(&Engine::apply(table, &table_report)),
    )
}

/// One restart-warm clean: fresh engine, artifacts loaded from disk.
/// Returns the canon report, repaired CSV, and the cache hit count.
fn clean_warm(dir: &std::path::Path, table: &Table) -> (String, String, usize) {
    let mut engine = fresh_engine();
    let store = ArtifactStore::open(dir, "default").expect("open store");
    engine.attach_store(store).expect("attach store");
    let report = engine.clean_table(table);
    let table_report = report.table_report();
    (
        format!("{table_report:#?}"),
        io::to_csv(&Engine::apply(table, &table_report)),
        report.cache_hits(),
    )
}

fn clean_request(csv: &str) -> Json {
    Json::obj()
        .field("op", Json::str("clean"))
        .field("csv", Json::str(csv))
}

fn main() {
    let cli = Cli::parse();
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_store.json".to_string());
    let iters = if cli.full {
        30
    } else if cli.smoke {
        5
    } else {
        15
    };

    // The canonical 120-row e2e workload (seed overridable for soak runs).
    let table = sample_noisy_table(cli.seed.wrapping_add(40), 120);
    let csv_in = io::to_csv(&table);
    // Round-trip through CSV so every arm (the daemon parses CSV text)
    // sees byte-identical input.
    let table = io::parse_csv(&csv_in).expect("canonical csv parses");

    // --- Identity gates -------------------------------------------------
    let (cold_canon, cold_csv) = clean_cold(&table);

    // Seed the store once (a prior process's flush), then restart-warm.
    let store_dir = std::env::temp_dir().join(format!("dv-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    {
        let mut seeder = fresh_engine();
        let store = ArtifactStore::open(&store_dir, "default").expect("open store");
        seeder.attach_store(store).expect("attach store");
        seeder.clean_table(&table);
        seeder.flush_store().expect("flush store");
    }
    let (warm_canon, warm_csv, warm_hits) = clean_warm(&store_dir, &table);
    assert_eq!(
        warm_canon, cold_canon,
        "warm-from-disk report diverged from cold"
    );
    assert_eq!(warm_csv, cold_csv, "warm-from-disk CSV diverged from cold");
    let n_cols_cleaned = warm_hits;
    assert!(
        n_cols_cleaned > 0,
        "warm restart must serve at least one column from the store"
    );

    // Daemon arm: in-process server, warm tenant cache.
    let server = Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let address = server.address();
    let server_thread = std::thread::spawn(move || server.run().expect("serve"));
    let warmup = roundtrip(&address, &clean_request(&csv_in)).expect("daemon warmup");
    assert_eq!(warmup.get("ok"), Some(&Json::Bool(true)), "{warmup:?}");
    let serve_csv = warmup
        .get("csv")
        .and_then(Json::as_str)
        .expect("csv in response")
        .to_string();
    assert_eq!(serve_csv, cold_csv, "daemon CSV diverged from batch CSV");

    // Concurrent clients: byte-identity must hold under contention.
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let address = address.clone();
            let csv_in = csv_in.clone();
            std::thread::spawn(move || {
                roundtrip(&address, &clean_request(&csv_in))
                    .expect("concurrent clean")
                    .get("csv")
                    .and_then(Json::as_str)
                    .expect("csv in response")
                    .to_string()
            })
        })
        .collect();
    for (i, client) in clients.into_iter().enumerate() {
        assert_eq!(
            client.join().expect("client thread"),
            cold_csv,
            "concurrent client {i} diverged"
        );
    }

    // --- Timings --------------------------------------------------------
    let cold_us = time_us(iters, || clean_cold(&table).0.len());
    let warm_us = time_us(iters, || clean_warm(&store_dir, &table).0.len());
    let serve_us = time_us(iters, || {
        roundtrip(&address, &clean_request(&csv_in))
            .expect("timed clean")
            .get("n_repairs")
            .and_then(Json::as_i64)
    });
    let warm_speedup = cold_us / warm_us.max(1e-9);
    let serve_speedup = cold_us / serve_us.max(1e-9);

    let shutdown = roundtrip(&address, &Json::obj().field("op", Json::str("shutdown")));
    assert!(shutdown.is_ok(), "daemon shutdown failed: {shutdown:?}");
    server_thread.join().expect("daemon exits");

    let blob_bytes =
        std::fs::metadata(std::path::Path::new(&store_dir).join("tenants/default/artifacts.dvs"))
            .map(|m| m.len())
            .unwrap_or(0);
    let _ = std::fs::remove_dir_all(&store_dir);

    eprintln!(
        "store bench: {} rows, {n_cols_cleaned} cached columns, {blob_bytes} blob bytes\n  \
         cold {cold_us:9.1} µs   warm-from-disk {warm_us:9.1} µs   ×{warm_speedup:.2}\n  \
         cold {cold_us:9.1} µs   daemon         {serve_us:9.1} µs   ×{serve_speedup:.2}",
        table.n_rows(),
    );

    let json = Json::obj()
        .field("benchmark", Json::str("store_warm_start_vs_cold"))
        .field("seed", Json::Int(cli.seed as i64))
        .field(
            "baseline_context",
            Json::str("fresh-engine cold clean of the 120-row e2e table on identical inputs"),
        )
        .field("n_rows", Json::Int(table.n_rows() as i64))
        .field("n_cols", Json::Int(table.n_cols() as i64))
        .field("n_cached_columns", Json::Int(n_cols_cleaned as i64))
        .field("store_blob_bytes", Json::Int(blob_bytes as i64))
        .field("iters", Json::Int(iters as i64))
        .field("cold_us", Json::Num(cold_us))
        .field("warm_from_disk_us", Json::Num(warm_us))
        .field("serve_roundtrip_us", Json::Num(serve_us))
        .field("warm_speedup", Json::Num(warm_speedup))
        .field("serve_speedup", Json::Num(serve_speedup))
        .field("warm_speedup_target_5_met", Json::Bool(warm_speedup >= 5.0))
        .field("identical", Json::Bool(true))
        .field("concurrent_clients_identical", Json::Bool(true));
    std::fs::write(&out_path, json.render_pretty()).expect("write benchmark JSON");
    println!("{}", json.render_pretty());
    eprintln!("warm-from-disk ×{warm_speedup:.2}, daemon ×{serve_speedup:.2}; wrote {out_path}");
}
