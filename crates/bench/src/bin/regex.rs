//! Matcher benchmark: NFA oracle vs memoized-DFA fast path → `BENCH_regex.json`.
//!
//! Measures the three call sites the DFA swap optimizes, each as a live
//! A/B against the cyclic-NFA reference on the same inputs:
//!
//! 1. **membership** — the `nfa_match_64_values` micro-bench workload
//!    (`(A[0-9].)+` over 64 values) through `matches_nfa` vs `matches`;
//! 2. **profile** — the 200-row column profile with the profiler's
//!    `MatchEngine::Nfa` vs the default DFA batch scoring;
//! 3. **rescore** — the engine cache's append-only re-score of a learned
//!    profile against a grown column, NFA loop vs `rescore_profile`.
//!
//! Every A/B asserts the two engines produce *identical* results (the
//! byte-identity guarantee CI relies on); the process exits non-zero if
//! they ever diverge. Targets from the tentpole issue (≥3× membership,
//! ≥1.5× profile) are recorded as booleans, not asserted, so a loaded CI
//! machine cannot flake the build.
//!
//! Flags: the shared `--smoke`/`--full`/`--seed N` sizing plus
//! `--out PATH` (default `BENCH_regex.json`).

use std::time::Instant;

use datavinci_bench::{arg_after, sample_noisy_table, Cli};
use datavinci_engine::json::Json;
use datavinci_profile::{
    profile_plain, rescore_profile, ColumnProfile, LearnedPattern, MatchEngine, ProfilerConfig,
};
use datavinci_regex::{CharClass, CompiledPattern, MaskedString, Pattern};

/// The 200-row noisy column the `profile_200_row_column` micro-bench uses.
fn sample_column(seed: u64) -> Vec<String> {
    sample_noisy_table(seed, 200)
        .column(2)
        .expect("flavor column")
        .rendered()
}

/// `rescore_profile` with the NFA oracle substituted for the matcher —
/// builds the same rows/coverage/sorted profile, so the A/B against
/// [`rescore_profile`] differs only in the membership engine.
fn rescore_profile_nfa(prior: &ColumnProfile, values: &[MaskedString]) -> ColumnProfile {
    let n = values.len();
    let mut keyed: Vec<(String, LearnedPattern)> = prior
        .patterns
        .iter()
        .map(|lp| {
            let rows: Vec<usize> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| lp.compiled.matches_nfa(v))
                .map(|(i, _)| i)
                .collect();
            let coverage = if n == 0 {
                0.0
            } else {
                rows.len() as f64 / n as f64
            };
            let rescored = LearnedPattern {
                pattern: lp.pattern.clone(),
                compiled: lp.compiled.clone(),
                rows,
                coverage,
            };
            (rescored.pattern.to_string(), rescored)
        })
        .collect();
    keyed.sort_by(|(ka, a), (kb, b)| {
        b.coverage
            .partial_cmp(&a.coverage)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| ka.cmp(kb))
    });
    ColumnProfile {
        patterns: keyed.into_iter().map(|(_, lp)| lp).collect(),
        n_values: n,
    }
}

/// Wall-clock of `iters` runs of `f`, in microseconds per iteration.
fn time_us<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let started = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    started.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// Deterministic digest of a profile for identity assertions (the compiled
/// patterns carry memo state, so `Debug` equality would be meaningless).
fn canon_profile(profile: &ColumnProfile) -> Vec<(String, Vec<usize>, f64)> {
    profile
        .patterns
        .iter()
        .map(|lp| (lp.pattern.to_string(), lp.rows.clone(), lp.coverage))
        .collect()
}

fn main() {
    let cli = Cli::parse();
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_regex.json".to_string());
    let (match_iters, profile_iters) = if cli.full {
        (20_000, 200)
    } else if cli.smoke {
        (2_000, 20)
    } else {
        (10_000, 60)
    };

    // 1. Membership micro-bench: (A[0-9].)+ over the 64-value workload.
    let pattern = CompiledPattern::compile(Pattern::plus(Pattern::concat([
        Pattern::lit("A"),
        Pattern::Class(CharClass::Digit),
        Pattern::lit("."),
    ])));
    let values: Vec<MaskedString> = (0..64)
        .map(|i| MaskedString::from_plain(&"A1.".repeat(i % 8 + 1)))
        .collect();
    let nfa_verdicts: Vec<bool> = values.iter().map(|v| pattern.matches_nfa(v)).collect();
    let dfa_verdicts: Vec<bool> = values.iter().map(|v| pattern.matches(v)).collect();
    assert_eq!(
        nfa_verdicts, dfa_verdicts,
        "membership diverged between NFA and DFA"
    );
    let match_nfa_us = time_us(match_iters, || {
        values.iter().filter(|v| pattern.matches_nfa(v)).count()
    });
    let match_dfa_us = time_us(match_iters, || {
        values.iter().filter(|v| pattern.matches(v)).count()
    });
    let match_speedup = match_nfa_us / match_dfa_us.max(1e-9);
    eprintln!(
        "  membership 64 values   nfa {match_nfa_us:8.2} µs   dfa {match_dfa_us:8.2} µs   \
         ×{match_speedup:.2}"
    );

    // 2. Column profile: identical learning, NFA vs DFA candidate scoring.
    // Default seed 42 = the same noisy column as `profile_200_row_column`
    // in the criterion micro-benches, so the ms figures line up with
    // ROADMAP's baselines; an explicit `--seed` varies the workload for
    // robustness checks (and is recorded as `column_seed` below).
    let column_seed = cli.explicit_seed.unwrap_or(42);
    let column = sample_column(column_seed);
    let nfa_cfg = ProfilerConfig {
        match_engine: MatchEngine::Nfa,
        ..ProfilerConfig::default()
    };
    let dfa_cfg = ProfilerConfig::default();
    let nfa_profile = profile_plain(&column, &nfa_cfg);
    let dfa_profile = profile_plain(&column, &dfa_cfg);
    assert_eq!(
        canon_profile(&nfa_profile),
        canon_profile(&dfa_profile),
        "profiles diverged between NFA and DFA scoring"
    );
    let profile_nfa_us = time_us(profile_iters, || profile_plain(&column, &nfa_cfg));
    let profile_dfa_us = time_us(profile_iters, || profile_plain(&column, &dfa_cfg));
    let profile_speedup = profile_nfa_us / profile_dfa_us.max(1e-9);
    eprintln!(
        "  profile 200 rows       nfa {:8.2} ms   dfa {:8.2} ms   ×{profile_speedup:.2}",
        profile_nfa_us / 1e3,
        profile_dfa_us / 1e3
    );

    // 3. Append-only re-score: the engine cache's warm path. Both arms
    // build the complete re-scored profile; only the matcher differs.
    let masked: Vec<MaskedString> = column
        .iter()
        .chain(column.iter().take(40)) // 20% appended growth
        .map(|s| MaskedString::from_plain(s))
        .collect();
    let rescored = rescore_profile(&dfa_profile, &masked);
    assert_eq!(
        canon_profile(&rescored),
        canon_profile(&rescore_profile_nfa(&dfa_profile, &masked)),
        "re-score diverged between NFA and DFA"
    );
    let rescore_nfa_us = time_us(profile_iters, || rescore_profile_nfa(&dfa_profile, &masked));
    let rescore_dfa_us = time_us(profile_iters, || rescore_profile(&dfa_profile, &masked));
    let rescore_speedup = rescore_nfa_us / rescore_dfa_us.max(1e-9);
    eprintln!(
        "  rescore 240 rows       nfa {rescore_nfa_us:8.2} µs   dfa {rescore_dfa_us:8.2} µs   \
         ×{rescore_speedup:.2}"
    );

    // PR-1 micro-bench baselines (ROADMAP, same workloads, measured on the
    // 1-core build container): pre-DFA `nfa_match_64_values` 59 µs,
    // `profile_200_row_column` 1.18 ms. The issue's ≥3× / ≥1.5× targets
    // are against these; the live A/B above is conservative because the
    // profiler's *learning* side also got faster for both engines in the
    // same change. On other hardware the `*_vs_pr1_baseline` ratios mix
    // machines — trust the live `*_speedup` fields there instead (the
    // `baseline_context` field flags this).
    const BASELINE_MATCH_US: f64 = 59.0;
    const BASELINE_PROFILE_MS: f64 = 1.18;
    let match_vs_baseline = BASELINE_MATCH_US / match_dfa_us.max(1e-9);
    let profile_vs_baseline = BASELINE_PROFILE_MS / (profile_dfa_us / 1e3).max(1e-9);

    let json = Json::obj()
        .field("benchmark", Json::str("regex_nfa_vs_dfa"))
        .field("column_seed", Json::Int(column_seed as i64))
        .field(
            "baseline_context",
            Json::str("PR-1 numbers from the 1-core reference container (ROADMAP.md)"),
        )
        .field("match_iters", Json::Int(match_iters as i64))
        .field("profile_iters", Json::Int(profile_iters as i64))
        .field("match_nfa_us", Json::Num(match_nfa_us))
        .field("match_dfa_us", Json::Num(match_dfa_us))
        .field("match_speedup", Json::Num(match_speedup))
        .field("match_vs_pr1_baseline", Json::Num(match_vs_baseline))
        .field("match_target_3x_met", Json::Bool(match_vs_baseline >= 3.0))
        .field("profile_nfa_ms", Json::Num(profile_nfa_us / 1e3))
        .field("profile_dfa_ms", Json::Num(profile_dfa_us / 1e3))
        .field("profile_speedup", Json::Num(profile_speedup))
        .field("profile_vs_pr1_baseline", Json::Num(profile_vs_baseline))
        .field(
            "profile_target_1_5x_met",
            Json::Bool(profile_vs_baseline >= 1.5),
        )
        .field("rescore_nfa_us", Json::Num(rescore_nfa_us))
        .field("rescore_dfa_us", Json::Num(rescore_dfa_us))
        .field("rescore_speedup", Json::Num(rescore_speedup))
        .field("identical", Json::Bool(true));
    std::fs::write(&out_path, json.render_pretty()).expect("write benchmark JSON");
    println!("{}", json.render_pretty());
    eprintln!(
        "membership ×{match_speedup:.2}, profile ×{profile_speedup:.2}, \
         rescore ×{rescore_speedup:.2}; wrote {out_path}"
    );
}
