//! Regenerates paper Table 3: benchmark properties.

use datavinci_bench::report::print_table;
use datavinci_bench::Cli;
use datavinci_corpus::{
    avg_inputs, excel_like, formula_benchmark, synthetic_errors, wikipedia_like,
};

fn main() {
    let cli = Cli::parse();
    let wiki = wikipedia_like(cli.seed, cli.scale);
    let excel = excel_like(cli.seed + 1, cli.scale);
    let synth = synthetic_errors(cli.seed + 2, cli.scale);
    let (n_single, n_multi) = if cli.full { (720, 380) } else { (36, 19) };
    let formulas = formula_benchmark(cli.seed + 3, n_single, n_multi);

    let mut rows = Vec::new();
    for (b, metrics) in [
        (&wiki, "Precision, Fire Rate"),
        (&excel, "Precision, Fire Rate"),
        (&synth, "Precision, Recall, F1"),
    ] {
        let s = b.stats();
        rows.push(vec![
            b.name.to_string(),
            metrics.to_string(),
            s.n_tables.to_string(),
            format!("{:.1}", s.avg_cols),
            format!("{:.1}", s.avg_rows),
        ]);
    }
    let avg_rows =
        formulas.iter().map(|c| c.dirty.n_rows()).sum::<usize>() as f64 / formulas.len() as f64;
    rows.push(vec![
        "Excel Formulas".to_string(),
        "Execution Success".to_string(),
        formulas.len().to_string(),
        format!("{:.1}", avg_inputs(&formulas)),
        format!("{avg_rows:.1}"),
    ]);
    print_table(
        "Table 3 — Benchmark properties (paper: 1000/5.1/27.3, 200/1.6/523.4, 1000/4.3/447.5, 11000/1.4/216.5)",
        &["Dataset", "Metrics", "# Tables", "# Col", "# Row"],
        &rows,
    );
}
