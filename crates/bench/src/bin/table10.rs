//! Regenerates paper Table 10: time / disk / memory per system on the
//! Wikipedia-like benchmark.
//!
//! Substitutions (documented in DESIGN.md): "disk" is the persistent-model
//! footprint estimate; "memory" is peak live heap measured by a metering
//! allocator. Absolute values differ from the paper's hardware; the *shape*
//! (HoloClean and T5 heaviest, DataVinci light) is the reproduced claim.

use datavinci_bench::alloc_meter::{peak_bytes, reset_peak, MeteredAlloc};
use datavinci_bench::report::{print_table, PAPER_TABLE10};
use datavinci_bench::{Cli, Harness, SystemKind};
use datavinci_corpus::wikipedia_like;

#[global_allocator]
static ALLOC: MeteredAlloc = MeteredAlloc;

fn main() {
    let cli = Cli::parse();
    eprintln!("building harness…");
    let harness = Harness::new(cli.seed ^ 0xBEEF);
    let wiki = wikipedia_like(cli.seed, cli.scale);

    let mut rows = Vec::new();
    for kind in SystemKind::main_lineup() {
        eprintln!("  running {} …", kind.name());
        reset_peak();
        let ms = harness.time_per_table(kind, &wiki);
        let mem_mb = peak_bytes() as f64 / (1024.0 * 1024.0);
        let disk_mb = harness.model_bytes(kind) as f64 / (1024.0 * 1024.0);
        rows.push(vec![
            kind.name().to_string(),
            format!("{ms:.1}"),
            format!("{disk_mb:.2}"),
            format!("{mem_mb:.1}"),
        ]);
    }
    print_table(
        "Table 10 — Runtime resources per table (measured)",
        &["System", "Time(ms)", "Disk(MB)", "Memory(MB)"],
        &rows,
    );
    let paper_rows: Vec<Vec<String>> = PAPER_TABLE10
        .iter()
        .map(|r| {
            let f = |v: Option<f64>| v.map_or("–".to_string(), |x| format!("{x:.1}"));
            vec![r.0.to_string(), format!("{:.1}", r.1), f(r.2), f(r.3)]
        })
        .collect();
    print_table(
        "Table 10 — Runtime resources (paper)",
        &["System", "Time(ms)", "Disk(MB)", "Memory(MB)"],
        &paper_rows,
    );
}
