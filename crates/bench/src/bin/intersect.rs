//! Intersection-repair benchmark: unbounded repair DP vs the pattern ×
//! edit-automaton product strategy → `BENCH_intersect.json`.
//!
//! Measures `RepairStrategy::Intersect` (iterative-deepening product
//! search with a DP fallback) against `RepairStrategy::Planner` (the
//! unbounded DP it must reproduce byte-for-byte) on the two regimes that
//! bracket its behaviour:
//!
//! 1. **duplicate-heavy** — Zipf-expanded corrupted tables where every
//!    distinct error value recurs with real multiplicity; the planner's
//!    distinct-value grouping means each strategy runs once per distinct
//!    value, so this times the raw search on realistic error shapes;
//! 2. **all-distinct** — the 120-row noisy micro-bench column
//!    (ROADMAP's `clean_120_rows` workload), where nothing is shared and
//!    every error row pays the search cost individually.
//!
//! Both regimes assert the two strategies produce *identical* reports (the
//! completeness + byte-identity guarantee `tests/intersect_vs_dp.rs`
//! proves exhaustively); the process exits non-zero on any divergence.
//! Product-search telemetry (runs, states explored, fallbacks) is captured
//! from the `repair.product_*` counters and recorded alongside the
//! timings. The no-regression target is recorded as a boolean, not
//! asserted, so a loaded CI machine cannot flake the build.
//!
//! Flags: the shared `--smoke`/`--full`/`--seed N` sizing plus
//! `--out PATH` (default `BENCH_intersect.json`).

use std::time::Instant;

use datavinci_bench::{arg_after, sample_noisy_table, Cli};
use datavinci_core::{ColumnAnalysis, DataVinci, DataVinciConfig};
use datavinci_corpus::{Flavor, NoiseModel, TableSpec};
use datavinci_engine::json::Json;
use datavinci_table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Wall-clock of `iters` runs of `f`, in microseconds per iteration.
fn time_us<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let started = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    started.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// The duplicate-heavy workload (same shape as `--bin repair`): a small
/// corrupted base table Zipf-expanded row-wise, so erroneous values recur
/// with real multiplicity.
fn duplicate_heavy_tables(seed: u64, n_tables: usize, rows: usize) -> Vec<Table> {
    let base_rows = (rows / 8).max(20);
    let mut rng = StdRng::seed_from_u64(seed);
    let noise = NoiseModel { cell_prob: 0.25 };
    (0..n_tables)
        .map(|_| {
            let spec = TableSpec::new(base_rows, vec![Flavor::PlayerWithCategory, Flavor::Quarter]);
            let clean = spec.generate(&mut rng);
            let (dirty, _) = noise.corrupt_table(&mut rng, &clean);
            let picks: Vec<usize> = (0..rows)
                .map(|_| {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    ((base_rows as f64) * u * u) as usize
                })
                .collect();
            Table::new(
                dirty
                    .columns()
                    .iter()
                    .map(|col| {
                        let values: Vec<_> = picks
                            .iter()
                            .map(|&j| col.get(j).expect("base row in range").clone())
                            .collect();
                        datavinci_table::Column::new(col.name(), values)
                    })
                    .collect(),
            )
        })
        .collect()
}

fn main() {
    let cli = Cli::parse();
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_intersect.json".to_string());
    let (n_tables, rows, iters) = if cli.full {
        (6, 2000, 10)
    } else if cli.smoke {
        (3, 1000, 4)
    } else {
        (4, 1200, 6)
    };

    let dp = DataVinci::new(); // default strategy: the DP planner
    let intersect = DataVinci::with_config(DataVinciConfig::intersect_repair());

    // 1. Duplicate-heavy repair A/B. Analysis is strategy-independent and
    // shared; only the repair phase is timed.
    let tables = duplicate_heavy_tables(cli.seed, n_tables, rows);
    let min_text = dp.config().min_text_fraction;
    let mut analyses: Vec<(&Table, ColumnAnalysis)> = Vec::new();
    for table in &tables {
        for col in 0..table.n_cols() {
            let column = table.column(col).expect("in range");
            if column.text_fraction() < min_text {
                continue;
            }
            analyses.push((table, dp.analyze_column(table, col)));
        }
    }
    let n_errors: usize = analyses.iter().map(|(_, a)| a.error_rows.len()).sum();
    eprintln!(
        "intersect bench: {} tables, {} columns, {n_errors} error rows",
        tables.len(),
        analyses.len()
    );

    // Identity gate: the product strategy's reports must equal the DP's.
    for (table, analysis) in &analyses {
        let a = dp.repair_analysis(table, analysis);
        let b = intersect.repair_analysis(table, analysis);
        assert_eq!(
            format!("{a:#?}"),
            format!("{b:#?}"),
            "intersect strategy diverged from the DP (col {})",
            analysis.col
        );
    }
    let dup_dp_us = time_us(iters, || {
        analyses
            .iter()
            .map(|(t, a)| dp.repair_analysis(t, a).repairs.len())
            .sum::<usize>()
    });
    let dup_intersect_us = time_us(iters, || {
        analyses
            .iter()
            .map(|(t, a)| intersect.repair_analysis(t, a).repairs.len())
            .sum::<usize>()
    });
    let dup_ratio = dup_dp_us / dup_intersect_us.max(1e-9);
    eprintln!(
        "  repair (dup-heavy)   dp {dup_dp_us:8.1} µs   intersect {dup_intersect_us:8.1} µs   \
         ×{dup_ratio:.2}"
    );

    // Product-search telemetry over one full duplicate-heavy pass.
    let ((), profile) = datavinci_telemetry::collect(true, || {
        for (t, a) in &analyses {
            std::hint::black_box(intersect.repair_analysis(t, a).repairs.len());
        }
    });
    let counters = profile.expect("collector active").metrics.counters;
    let product_runs = counters.get("repair.product_runs").copied().unwrap_or(0);
    let product_states = counters.get("repair.product_states").copied().unwrap_or(0);
    let product_fallbacks = counters
        .get("repair.product_fallbacks")
        .copied()
        .unwrap_or(0);
    eprintln!(
        "  product search: {product_runs} runs, {product_states} states explored, \
         {product_fallbacks} fallbacks"
    );

    // 2. All-distinct end-to-end guard: the 120-row noisy micro-bench
    // column; every error pays the search cost individually.
    let e2e_table = sample_noisy_table(42, 120);
    let a = dp.clean_column(&e2e_table, 2);
    let b = intersect.clean_column(&e2e_table, 2);
    assert_eq!(
        format!("{a:#?}"),
        format!("{b:#?}"),
        "end-to-end intersect clean diverged from the DP"
    );
    let e2e_iters = iters * 4;
    let e2e_dp_ms = time_us(e2e_iters, || dp.clean_column(&e2e_table, 2).n_rows) / 1e3;
    let e2e_intersect_ms =
        time_us(e2e_iters, || intersect.clean_column(&e2e_table, 2).n_rows) / 1e3;
    let e2e_ratio = e2e_dp_ms / e2e_intersect_ms.max(1e-9);
    eprintln!(
        "  clean 120 rows (distinct) dp {e2e_dp_ms:6.2} ms   intersect {e2e_intersect_ms:6.2} ms   \
         ×{e2e_ratio:.2}"
    );

    // No-regression targets: the product search must not be slower than
    // the DP beyond measurement noise (recorded, not asserted).
    let dup_regression_free = dup_intersect_us <= dup_dp_us * 1.10;
    let json = Json::obj()
        .field("benchmark", Json::str("repair_dp_vs_intersect"))
        .field("seed", Json::Int(cli.seed as i64))
        .field("n_tables", Json::Int(tables.len() as i64))
        .field("n_columns", Json::Int(analyses.len() as i64))
        .field("rows_per_table", Json::Int(rows as i64))
        .field("n_error_rows", Json::Int(n_errors as i64))
        .field("repair_iters", Json::Int(iters as i64))
        .field("dup_heavy_dp_us", Json::Num(dup_dp_us))
        .field("dup_heavy_intersect_us", Json::Num(dup_intersect_us))
        .field("dup_heavy_ratio", Json::Num(dup_ratio))
        .field("dup_heavy_regression_free", Json::Bool(dup_regression_free))
        .field("product_runs", Json::Int(product_runs as i64))
        .field("product_states_explored", Json::Int(product_states as i64))
        .field("product_fallbacks", Json::Int(product_fallbacks as i64))
        .field(
            "product_states_per_run",
            Json::Num(product_states as f64 / (product_runs.max(1)) as f64),
        )
        .field("e2e_distinct_dp_ms", Json::Num(e2e_dp_ms))
        .field("e2e_distinct_intersect_ms", Json::Num(e2e_intersect_ms))
        .field("e2e_distinct_ratio", Json::Num(e2e_ratio))
        .field("identical", Json::Bool(true));
    std::fs::write(&out_path, json.render_pretty()).expect("write benchmark JSON");
    println!("{}", json.render_pretty());
    eprintln!(
        "dup-heavy ×{dup_ratio:.2}, distinct ×{e2e_ratio:.2}, \
         {product_fallbacks} fallbacks; wrote {out_path}"
    );
}
