//! Regenerates paper Figure 7: distributions of (a) original→repair edit
//! distances and (b) repairs per column, execution-guided vs unsupervised,
//! on the Excel-Formulas benchmark.

use datavinci_bench::report::print_table;
use datavinci_bench::{Cli, Harness};
use datavinci_core::CleaningSystem;
use datavinci_corpus::formula_benchmark;
use datavinci_regex::levenshtein;

fn main() {
    let cli = Cli::parse();
    eprintln!("building harness…");
    let _harness = Harness::new(cli.seed ^ 0xBEEF);
    let (n_single, n_multi) = if cli.full { (720, 380) } else { (40, 20) };
    let cases = formula_benchmark(cli.seed + 3, n_single, n_multi);

    // Collect per-column repair lists for both modes.
    let dv = datavinci_core::DataVinci::new();
    let mut unsup_dists: Vec<usize> = Vec::new();
    let mut unsup_counts: Vec<usize> = Vec::new();
    let mut exec_dists: Vec<usize> = Vec::new();
    let mut exec_counts: Vec<usize> = Vec::new();
    for case in &cases {
        // Per the Table-8 protocol, suggestions count only when they apply
        // to inputs of rows with erroneous executions.
        let failing = case.program.execution_groups(&case.dirty).failures;
        for name in case.program.input_columns() {
            let Some(col) = case.dirty.column_index(name) else {
                continue;
            };
            let repairs: Vec<_> = dv
                .repair(&case.dirty, col)
                .into_iter()
                .filter(|r| failing.contains(&r.row))
                .collect();
            unsup_counts.push(repairs.len());
            unsup_dists.extend(
                repairs
                    .iter()
                    .map(|r| levenshtein(&r.original, &r.repaired)),
            );
        }
        let report = dv.clean_with_program(&case.dirty, &case.program);
        for colrep in &report.columns {
            exec_counts.push(colrep.repairs.len());
            exec_dists.extend(
                colrep
                    .repairs
                    .iter()
                    .map(|r| levenshtein(&r.original, &r.repaired)),
            );
        }
    }

    let hist = |dists: &[usize], edges: &[usize]| -> Vec<String> {
        let mut buckets = vec![0usize; edges.len() + 1];
        for &d in dists {
            let b = edges.iter().position(|&e| d <= e).unwrap_or(edges.len());
            buckets[b] += 1;
        }
        let total: usize = buckets.iter().sum::<usize>().max(1);
        buckets
            .iter()
            .map(|c| format!("{:.1}%", 100.0 * *c as f64 / total as f64))
            .collect()
    };

    let edges = [2usize, 5, 10, 15, 20];
    let mut rows = vec![];
    let mut u = vec!["Unsupervised".to_string()];
    u.extend(hist(&unsup_dists, &edges));
    let mut e = vec!["Execution Guided".to_string()];
    e.extend(hist(&exec_dists, &edges));
    rows.push(u);
    rows.push(e);
    print_table(
        "Figure 7a — Edit-distance distribution of suggested repairs",
        &["Mode", "≤2", "3-5", "6-10", "11-15", "16-20", ">20"],
        &rows,
    );

    let mean = |v: &[usize]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<usize>() as f64 / v.len() as f64
        }
    };
    let total = |v: &[usize]| v.iter().sum::<usize>();
    let rows = vec![
        vec![
            "Unsupervised".to_string(),
            total(&unsup_counts).to_string(),
            format!("{:.2}", mean(&unsup_counts)),
            format!("{:.2}", mean(&unsup_dists)),
        ],
        vec![
            "Execution Guided".to_string(),
            total(&exec_counts).to_string(),
            format!("{:.2}", mean(&exec_counts)),
            format!("{:.2}", mean(&exec_dists)),
        ],
    ];
    print_table(
        "Figure 7b — Repairs per column (paper: execution-guided shifts both distributions higher)",
        &[
            "Mode",
            "Total repairs",
            "Repairs/column",
            "Mean edit distance",
        ],
        &rows,
    );
}
