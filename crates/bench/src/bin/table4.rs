//! Regenerates paper Table 4: system comparison overview.

use datavinci_baselines::table4;
use datavinci_bench::report::print_table;

fn main() {
    let rows: Vec<Vec<String>> = table4()
        .into_iter()
        .map(|s| vec![s.name.to_string(), s.category.as_str().to_string()])
        .collect();
    print_table(
        "Table 4 — System comparison overview",
        &["System", "Category"],
        &rows,
    );
}
