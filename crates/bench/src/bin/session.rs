//! Session benchmark: regenerate-per-repair vs table-scoped
//! `AnalysisSession` → `BENCH_session.json`.
//!
//! The tentpole of the session refactor is that one table clean builds its
//! table-scoped context — the rendered cell matrix, the `FeatureSet`, row
//! feature vectors, value pools — **once**, instead of once per column
//! repair. This benchmark drives a duplicate-heavy, many-column table
//! through both paths on identical inputs:
//!
//! 1. **legacy** — the pre-session cost model: each column cleaned through
//!    its own throwaway session (`DataVinci::clean_column`), regenerating
//!    the feature context per column;
//! 2. **session** — `DataVinci::clean_table_in` with one shared session.
//!
//! The A/B asserts the two paths produce *identical* reports (the
//! byte-identity guarantee CI relies on; non-zero exit on divergence), and
//! records the session's telemetry: the legacy path generates one
//! `FeatureSet` per hole-bearing column, the session exactly one per table.
//! The ≥×1.3 acceptance target is recorded as a boolean, not asserted, so
//! a loaded CI machine cannot flake the build.
//!
//! Flags: the shared `--smoke`/`--full`/`--seed N` sizing plus
//! `--out PATH` (default `BENCH_session.json`).

use std::time::Instant;

use datavinci_bench::{arg_after, Cli};
use datavinci_core::{DataVinci, SessionStats, TableReport};
use datavinci_corpus::{duplicate_rows, Flavor, NoiseModel, TableSpec};
use datavinci_engine::{json::Json, session_stats_json};
use datavinci_table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Wall-clock of `iters` runs of `f`, in microseconds per iteration.
fn time_us<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let started = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    started.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// The pre-session oracle: one throwaway session per column.
fn clean_legacy(dv: &DataVinci, table: &Table) -> (TableReport, SessionStats) {
    let mut report = TableReport::default();
    let mut stats = SessionStats::default();
    for col in 0..table.n_cols() {
        let column = table.column(col).expect("in range");
        if column.text_fraction() < dv.config().min_text_fraction {
            continue;
        }
        let session = dv.session(table);
        report.columns.push(dv.clean_column_in(&session, col));
        stats.accumulate(&session.stats());
    }
    (report, stats)
}

/// One shared session for the whole table.
fn clean_session(dv: &DataVinci, table: &Table) -> (TableReport, SessionStats) {
    let session = dv.session(table);
    let report = dv.clean_table_in(&session);
    (report, session.stats())
}

/// The workload: a wide table (11 textual columns across mixed flavors)
/// corrupted and then whole-row-duplicated, so every layer the session
/// shares — features, row vectors, pools, dtree examples — sees both many
/// columns and heavy value multiplicity.
fn duplicate_heavy_table(seed: u64, rows: usize) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = TableSpec::new(
        rows,
        vec![
            Flavor::PlayerWithCategory,
            Flavor::Quarter,
            Flavor::City,
            Flavor::CountryCode,
            Flavor::Color,
            Flavor::ProductCode,
            Flavor::Status,
            Flavor::Rating,
            Flavor::PrefixedId,
            Flavor::MonthAbbrev,
        ],
    );
    let clean = spec.generate(&mut rng);
    let noise = NoiseModel { cell_prob: 0.12 };
    let (dirty, _) = noise.corrupt_table(&mut rng, &clean);
    duplicate_rows(&mut rng, &dirty, 0.85)
}

fn main() {
    let cli = Cli::parse();
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_session.json".to_string());
    // Even the smoke tier keeps the table wide and deep enough that several
    // columns carry hole-bearing repairs (each regenerating the feature
    // context on the legacy path) — smaller tables leave the A/B dominated
    // by shared analysis cost and machine noise.
    let (base_rows, iters) = if cli.full {
        (400, 12)
    } else if cli.smoke {
        (250, 6)
    } else {
        (250, 10)
    };

    let table = duplicate_heavy_table(cli.seed, base_rows);
    let dv = DataVinci::new();

    // Identity gate + warm-up (both arms share one system, so the semantic
    // mask memo is equally warm for both timed loops).
    let (legacy_report, legacy_stats) = clean_legacy(&dv, &table);
    let (session_report, session_stats) = clean_session(&dv, &table);
    assert_eq!(
        format!("{session_report:#?}"),
        format!("{legacy_report:#?}"),
        "session clean diverged from the regenerate-per-repair reference"
    );
    assert_eq!(
        session_stats.feature_generations, 1,
        "session must generate exactly one FeatureSet: {session_stats:?}"
    );
    let n_errors: usize = session_report
        .columns
        .iter()
        .map(|c| c.detections.len())
        .sum();
    eprintln!(
        "session bench: {} rows × {} cols, {} cleaned columns, {n_errors} error rows; \
         feature generations legacy {} vs session {}; plan sharing ×{:.2}",
        table.n_rows(),
        table.n_cols(),
        session_report.columns.len(),
        legacy_stats.feature_generations,
        session_stats.feature_generations,
        session_stats.plan_sharing_factor(),
    );

    let legacy_us = time_us(iters, || clean_legacy(&dv, &table).0.columns.len());
    let session_us = time_us(iters, || clean_session(&dv, &table).0.columns.len());
    let speedup = legacy_us / session_us.max(1e-9);
    eprintln!(
        "  clean table   legacy {:9.1} µs   session {:9.1} µs   ×{speedup:.2}",
        legacy_us, session_us
    );

    let json = Json::obj()
        .field("benchmark", Json::str("session_vs_regenerate_per_repair"))
        .field("seed", Json::Int(cli.seed as i64))
        .field(
            "baseline_context",
            Json::str("PR-4 regenerate-per-repair clean_column loop on identical inputs"),
        )
        .field("n_rows", Json::Int(table.n_rows() as i64))
        .field("n_cols", Json::Int(table.n_cols() as i64))
        .field(
            "n_cleaned_columns",
            Json::Int(session_report.columns.len() as i64),
        )
        .field("n_error_rows", Json::Int(n_errors as i64))
        .field("iters", Json::Int(iters as i64))
        .field("legacy_us", Json::Num(legacy_us))
        .field("session_us", Json::Num(session_us))
        .field("speedup", Json::Num(speedup))
        .field("speedup_target_1_3_met", Json::Bool(speedup >= 1.3))
        .field(
            "legacy_feature_generations",
            Json::Int(legacy_stats.feature_generations as i64),
        )
        .field("session", session_stats_json(&session_stats))
        .field("identical", Json::Bool(true));
    std::fs::write(&out_path, json.render_pretty()).expect("write benchmark JSON");
    println!("{}", json.render_pretty());
    eprintln!("session clean ×{speedup:.2}; wrote {out_path}");
}
