//! Regenerates paper Table 5: error-detection performance across datasets.

use datavinci_bench::report::{pct, print_table, PAPER_TABLE5};
use datavinci_bench::{Cli, Harness, SystemKind};
use datavinci_corpus::{excel_like, synthetic_errors, wikipedia_like};

fn main() {
    let cli = Cli::parse();
    eprintln!("building harness (training Auto-Detect / T5)…");
    let harness = Harness::new(cli.seed ^ 0xBEEF);
    let wiki = wikipedia_like(cli.seed, cli.scale);
    let excel = excel_like(cli.seed + 1, cli.scale);
    let synth = synthetic_errors(cli.seed + 2, cli.scale);

    let mut rows = Vec::new();
    for kind in SystemKind::main_lineup() {
        eprintln!("  running {} …", kind.name());
        let w = harness.run_detection(kind, &wiki);
        let e = harness.run_detection(kind, &excel);
        let s = harness.run_detection(kind, &synth);
        rows.push(vec![
            kind.name().to_string(),
            pct(w.precision()),
            format!("{:.2}%", w.fire_rate()),
            pct(e.precision()),
            format!("{:.2}%", e.fire_rate()),
            pct(s.precision()),
            pct(s.recall()),
            pct(s.f1()),
        ]);
    }
    print_table(
        "Table 5 — Error detection (measured)",
        &[
            "System",
            "Wiki P",
            "Wiki Fire",
            "Excel P",
            "Excel Fire",
            "Syn P*",
            "Syn R",
            "Syn F1*",
        ],
        &rows,
    );
    let paper_rows: Vec<Vec<String>> = PAPER_TABLE5
        .iter()
        .map(|r| {
            let f = |v: Option<f64>| v.map_or("–".to_string(), |x| format!("{x:.1}"));
            vec![
                r.0.to_string(),
                f(r.1),
                f(r.2),
                f(r.3),
                f(r.4),
                f(r.5),
                f(r.6),
                f(r.7),
            ]
        })
        .collect();
    print_table(
        "Table 5 — Error detection (paper)",
        &[
            "System",
            "Wiki P",
            "Wiki Fire",
            "Excel P",
            "Excel Fire",
            "Syn P*",
            "Syn R",
            "Syn F1*",
        ],
        &paper_rows,
    );
}
