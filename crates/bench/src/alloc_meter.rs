//! A peak-tracking, allocation-counting global allocator.
//!
//! The paper reports RAM (+VRAM) per system; our stand-in is live-heap peak
//! during a run, measured by wrapping the system allocator. The wrapper also
//! keeps a monotonic count of allocation calls, which the hot-path bench
//! and the allocs/row regression gate read before/after a run to compute
//! allocations per row. Binaries and test targets opt in with
//! `#[global_allocator]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// The metering allocator.
pub struct MeteredAlloc;

// SAFETY: delegates to the system allocator; bookkeeping is atomic.
unsafe impl GlobalAlloc for MeteredAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

/// Resets the peak to the current live size.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak live heap since the last reset, in bytes.
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Current live heap, in bytes.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Monotonic count of allocation calls since process start.
///
/// Subtract two readings to count the allocations a region performed:
/// `let before = alloc_count(); work(); let n = alloc_count() - before;`
pub fn alloc_count() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}
