//! The experiment harness: builds every evaluated system with its required
//! context (training corpus, labels), runs it over benchmarks, and
//! aggregates the paper's metrics.

use std::collections::HashMap;
use std::time::Instant;

use datavinci_baselines::{
    AutoDetectLike, GptSim, HoloCleanLike, PottersWheelLike, RahaLike, T5Sim, WithRepairHead, Wmrr,
};
use datavinci_core::{CleaningSystem, DataVinci, DataVinciConfig, Detection, RepairSuggestion};
use datavinci_corpus::{synthetic_errors, BenchTable, Benchmark, FormulaCase, NoiseModel, Scale};
use datavinci_engine::{Engine, EngineConfig, WorkerPool};
use datavinci_table::{CellRef, CellValue, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::{truth_rows, DetectionCounts, RepairCounts};

/// DataVinci routed through the batch engine: detection and repair of the
/// same `(table, column)` share one cached clean instead of re-profiling,
/// and results stay byte-identical to the plain pipeline.
struct EngineBacked {
    engine: Engine,
}

impl CleaningSystem for EngineBacked {
    fn name(&self) -> &'static str {
        "DataVinci"
    }

    // `clean_column` re-hashes the table per call (O(cells)); that is
    // noise next to the clean itself (O(cells × patterns × edit DP)) and
    // the cache converts the second sweep over a table into report hits.
    fn detect(&self, table: &Table, col: usize) -> Vec<Detection> {
        self.engine.clean_column(table, col).report.detections
    }

    fn repair(&self, table: &Table, col: usize) -> Vec<RepairSuggestion> {
        self.engine.clean_column(table, col).report.repairs
    }
}

/// The evaluated systems (Tables 5–10) plus DataVinci's ablations (Table 9)
/// and the execution-guided variant (Table 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Full DataVinci.
    DataVinci,
    /// §5.4 ablation: no semantic abstraction.
    DvNoSemantics,
    /// §5.4 ablation: limited semantic concretization.
    DvLimitedSemantics,
    /// §5.4 ablation: no learned concretization.
    DvNoLearnedConcretization,
    /// §5.4 ablation: edit-distance-only ranking.
    DvEditDistanceRanking,
    /// WMRR.
    Wmrr,
    /// HoloClean-like.
    HoloClean,
    /// Raha (+ GPT repair head).
    Raha,
    /// Auto-Detect (+ GPT repair head).
    AutoDetect,
    /// Potter's Wheel (+ GPT repair head).
    PottersWheel,
    /// T5-sim.
    T5,
    /// GPT-3.5-sim.
    Gpt,
}

impl SystemKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::DataVinci => "DataVinci",
            SystemKind::DvNoSemantics => "No semantic abstraction",
            SystemKind::DvLimitedSemantics => "Limited semantic concretization",
            SystemKind::DvNoLearnedConcretization => "No learned concretization",
            SystemKind::DvEditDistanceRanking => "Edit distance ranking",
            SystemKind::Wmrr => "WMRR",
            SystemKind::HoloClean => "HoloClean",
            SystemKind::Raha => "Raha + GPT-3.5",
            SystemKind::AutoDetect => "Auto-Detect + GPT-3.5",
            SystemKind::PottersWheel => "Potters-Wheel + GPT-3.5",
            SystemKind::T5 => "T5",
            SystemKind::Gpt => "GPT-3.5",
        }
    }

    /// The seven comparison systems plus DataVinci (Table 5/6 row order).
    pub fn main_lineup() -> Vec<SystemKind> {
        vec![
            SystemKind::Wmrr,
            SystemKind::HoloClean,
            SystemKind::Raha,
            SystemKind::PottersWheel,
            SystemKind::AutoDetect,
            SystemKind::T5,
            SystemKind::Gpt,
            SystemKind::DataVinci,
        ]
    }

    /// Table 9's ablation lineup.
    pub fn ablation_lineup() -> Vec<SystemKind> {
        vec![
            SystemKind::DvNoSemantics,
            SystemKind::DvLimitedSemantics,
            SystemKind::DvNoLearnedConcretization,
            SystemKind::DvEditDistanceRanking,
            SystemKind::DataVinci,
        ]
    }
}

/// Shared trained state across benchmark runs.
pub struct Harness {
    datavinci: DataVinci,
    dv_engine: EngineBacked,
    dv_no_semantics: DataVinci,
    dv_limited: DataVinci,
    dv_no_learned: DataVinci,
    dv_edit_ranking: DataVinci,
    wmrr: Wmrr,
    holoclean: HoloCleanLike,
    autodetect: AutoDetectLike,
    potters: PottersWheelLike,
    t5: T5Sim,
    gpt: GptSim,
}

impl Harness {
    /// Builds all systems. `seed` controls the *training* corpora
    /// (disjoint from evaluation seeds): a clean corpus for Auto-Detect and
    /// (dirty, clean) pairs for T5, mirroring §4.3's training protocol.
    pub fn new(seed: u64) -> Harness {
        // Clean corpus for Auto-Detect's co-occurrence statistics.
        let clean_corpus: Vec<Table> = synthetic_errors(seed ^ 0xA070_DE7E, Scale::smoke())
            .tables
            .into_iter()
            .map(|t| t.clean)
            .chain(
                datavinci_corpus::wikipedia_like(seed ^ 0x1111, Scale::smoke())
                    .tables
                    .into_iter()
                    .map(|t| t.clean),
            )
            .collect();
        let autodetect = AutoDetectLike::train(&clean_corpus);

        // Corruption pairs for T5 (same noise model as the benchmark).
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7575);
        let noise = NoiseModel::default();
        let mut pairs: Vec<(String, String)> = Vec::new();
        for table in &clean_corpus {
            for col in table.columns() {
                for v in col.values() {
                    if let CellValue::Text(text) = v {
                        let (dirty, _) = noise.corrupt_value(&mut rng, text);
                        pairs.push((dirty, text.clone()));
                        pairs.push((text.clone(), text.clone()));
                    }
                }
            }
        }
        let t5 = T5Sim::train(pairs.iter().map(|(d, c)| (d.as_str(), c.as_str())));

        Harness {
            datavinci: DataVinci::new(),
            dv_engine: EngineBacked {
                engine: Engine::with_config(EngineConfig {
                    workers: 1,
                    cache: true,
                    ..EngineConfig::default()
                }),
            },
            dv_no_semantics: DataVinci::with_config(DataVinciConfig::ablation_no_semantics()),
            dv_limited: DataVinci::with_config(DataVinciConfig::ablation_limited_semantics()),
            dv_no_learned: DataVinci::with_config(
                DataVinciConfig::ablation_no_learned_concretization(),
            ),
            dv_edit_ranking: DataVinci::with_config(
                DataVinciConfig::ablation_edit_distance_ranking(),
            ),
            wmrr: Wmrr::new(),
            holoclean: HoloCleanLike::new(),
            autodetect,
            potters: PottersWheelLike::new(),
            t5,
            gpt: GptSim::new(),
        }
    }

    /// Per-table system instance (Raha needs the table's ground truth
    /// labels; detection-only systems get the GPT repair head).
    fn instance<'a>(&'a self, kind: SystemKind, bt: &BenchTable) -> Box<dyn CleaningSystem + 'a> {
        match kind {
            SystemKind::DataVinci => Box::new(&self.datavinci),
            SystemKind::DvNoSemantics => Box::new(&self.dv_no_semantics),
            SystemKind::DvLimitedSemantics => Box::new(&self.dv_limited),
            SystemKind::DvNoLearnedConcretization => Box::new(&self.dv_no_learned),
            SystemKind::DvEditDistanceRanking => Box::new(&self.dv_edit_ranking),
            SystemKind::Wmrr => Box::new(&self.wmrr),
            SystemKind::HoloClean => Box::new(&self.holoclean),
            SystemKind::Raha => {
                let mut labels: HashMap<usize, Vec<usize>> = HashMap::new();
                for cell in &bt.corrupted {
                    labels.entry(cell.col).or_default().push(cell.row);
                }
                Box::new(WithRepairHead::new(
                    RahaLike::with_labels(labels),
                    "Raha + GPT-3.5",
                ))
            }
            SystemKind::AutoDetect => Box::new(WithRepairHead::new(
                &self.autodetect,
                "Auto-Detect + GPT-3.5",
            )),
            SystemKind::PottersWheel => Box::new(WithRepairHead::new(
                &self.potters,
                "Potters-Wheel + GPT-3.5",
            )),
            SystemKind::T5 => Box::new(&self.t5),
            SystemKind::Gpt => Box::new(&self.gpt),
        }
    }

    /// Which columns are evaluated: the string columns (every system sees
    /// the same set).
    fn eval_columns(table: &Table) -> Vec<usize> {
        (0..table.n_cols())
            .filter(|&c| {
                table
                    .column(c)
                    .is_some_and(|col| col.text_fraction() >= 0.5)
            })
            .collect()
    }

    /// Per-table instance for the metric sweeps: DataVinci rides the cached
    /// engine so detection and repair of the same table share one clean.
    /// Timing paths ([`Harness::time_per_table`]) keep the plain instance.
    fn metric_instance<'a>(
        &'a self,
        kind: SystemKind,
        bt: &BenchTable,
    ) -> Box<dyn CleaningSystem + 'a> {
        match kind {
            SystemKind::DataVinci => Box::new(&self.dv_engine),
            _ => self.instance(kind, bt),
        }
    }

    /// Runs detection over a benchmark, micro-averaged. Tables are swept in
    /// parallel (one worker per hardware thread); per-table counts are
    /// folded in table order, so results are independent of scheduling.
    pub fn run_detection(&self, kind: SystemKind, bench: &Benchmark) -> DetectionCounts {
        let per_table = WorkerPool::new(0).map(&bench.tables, |_, bt| {
            let system = self.metric_instance(kind, bt);
            let mut counts = DetectionCounts::default();
            for col in Self::eval_columns(&bt.dirty) {
                let detections: Vec<Detection> = system.detect(&bt.dirty, col);
                let truth = truth_rows(&bt.corrupted, col);
                counts.add(&DetectionCounts::score(
                    &detections,
                    &truth,
                    bt.dirty.n_rows(),
                ));
            }
            counts
        });
        let mut total = DetectionCounts::default();
        for counts in &per_table {
            total.add(counts);
        }
        total
    }

    /// Runs repair over a benchmark, micro-averaged (parallel over tables,
    /// folded in table order).
    pub fn run_repair(&self, kind: SystemKind, bench: &Benchmark) -> RepairCounts {
        let per_table = WorkerPool::new(0).map(&bench.tables, |_, bt| {
            let system = self.metric_instance(kind, bt);
            let mut counts = RepairCounts::default();
            for col in Self::eval_columns(&bt.dirty) {
                let repairs: Vec<RepairSuggestion> = system.repair(&bt.dirty, col);
                let truth = truth_rows(&bt.corrupted, col);
                counts.add(&RepairCounts::score(&repairs, &truth, &bt.clean, col));
            }
            counts
        });
        let mut total = RepairCounts::default();
        for counts in &per_table {
            total.add(counts);
        }
        total
    }

    /// Wall-clock per table (Table 10), in milliseconds.
    pub fn time_per_table(&self, kind: SystemKind, bench: &Benchmark) -> f64 {
        let start = Instant::now();
        for bt in &bench.tables {
            let system = self.instance(kind, bt);
            for col in Self::eval_columns(&bt.dirty) {
                let _ = system.repair(&bt.dirty, col);
            }
        }
        start.elapsed().as_secs_f64() * 1000.0 / bench.tables.len().max(1) as f64
    }

    /// Approximate persistent-model footprint, in bytes (Table 10 "disk").
    pub fn model_bytes(&self, kind: SystemKind) -> usize {
        match kind {
            SystemKind::T5 => self.t5.model_bytes(),
            SystemKind::AutoDetect => self.autodetect.model_bytes(),
            SystemKind::HoloClean => 64 * 1024, // per-table model rebuilt on the fly
            _ => 4 * 1024,                      // configuration only
        }
    }
}

/// Execution-repair outcome (Table 8).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecOutcome {
    /// Fraction of formulas with zero failing cells after repair (%).
    pub formula_success: f64,
    /// Fraction of cells executing successfully after repair (%).
    pub cell_success: f64,
}

/// How repairs are applied on the formula benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// No repairs at all (the paper's "No Repair" row).
    NoRepair,
    /// A system's ordinary repairs, applied only to failing-row inputs.
    System(SystemKind),
    /// DataVinci with execution-guided pattern learning (§3.6).
    DataVinciExecGuided,
}

impl Harness {
    /// Runs one mode over the formula benchmark cases.
    pub fn run_execution(&self, mode: ExecMode, cases: &[FormulaCase]) -> ExecOutcome {
        let mut formulas_ok = 0usize;
        let mut cells_ok = 0usize;
        let mut cells_total = 0usize;
        for case in cases {
            let repaired = match mode {
                ExecMode::NoRepair => case.dirty.clone(),
                ExecMode::DataVinciExecGuided => {
                    self.datavinci
                        .clean_with_program(&case.dirty, &case.program)
                        .repaired_table
                }
                ExecMode::System(kind) => {
                    let bt = BenchTable {
                        dirty: case.dirty.clone(),
                        clean: case.clean.clone(),
                        corrupted: case.corrupted.clone(),
                    };
                    let system = self.instance(kind, &bt);
                    let failing = case.program.execution_groups(&case.dirty).failures;
                    let mut table = case.dirty.clone();
                    for name in case.program.input_columns() {
                        let Some(col) = table.column_index(name) else {
                            continue;
                        };
                        for r in system.repair(&case.dirty, col) {
                            // Per the paper: apply suggestions only on inputs
                            // of rows with erroneous executions.
                            if failing.contains(&r.row) {
                                table.set_cell(
                                    CellRef::new(col, r.row),
                                    CellValue::text(r.repaired.clone()),
                                );
                            }
                        }
                    }
                    table
                }
            };
            let groups = case.program.execution_groups(&repaired);
            cells_total += repaired.n_rows();
            cells_ok += groups.successes.len();
            if groups.fully_successful() {
                formulas_ok += 1;
            }
        }
        ExecOutcome {
            formula_success: 100.0 * formulas_ok as f64 / cases.len().max(1) as f64,
            cell_success: 100.0 * cells_ok as f64 / cells_total.max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_corpus::formula_benchmark;

    #[test]
    fn harness_smoke_detection_ordering() {
        // On a small synthetic benchmark DataVinci must beat T5 on precision
        // (the paper's headline ordering) and detect a non-trivial share.
        let harness = Harness::new(99);
        let bench = synthetic_errors(
            4242,
            Scale {
                n_tables: 6,
                row_divisor: 8,
            },
        );
        let dv = harness.run_detection(SystemKind::DataVinci, &bench);
        let t5 = harness.run_detection(SystemKind::T5, &bench);
        assert!(dv.recall() > 20.0, "dv {dv:?}");
        assert!(dv.precision() >= t5.precision(), "dv {dv:?} t5 {t5:?}");
    }

    #[test]
    fn exec_guided_beats_no_repair() {
        let harness = Harness::new(7);
        let cases = formula_benchmark(31, 4, 2);
        let none = harness.run_execution(ExecMode::NoRepair, &cases);
        let guided = harness.run_execution(ExecMode::DataVinciExecGuided, &cases);
        assert_eq!(none.formula_success, 0.0, "cases always have failures");
        assert!(
            guided.cell_success > none.cell_success,
            "{guided:?} vs {none:?}"
        );
        assert!(guided.formula_success > 0.0, "{guided:?}");
    }

    #[test]
    fn model_bytes_ordering() {
        let harness = Harness::new(1);
        assert!(harness.model_bytes(SystemKind::T5) > harness.model_bytes(SystemKind::DataVinci));
    }
}
