//! Plain-text table rendering for the experiment binaries, plus the paper's
//! published numbers for side-by-side comparison.

/// Renders an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<String>>(),
    );
    for row in rows {
        line(row);
    }
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}")
}

/// The paper's Table 5 (detection) reference values:
/// (system, wiki precision, wiki fire, excel precision, excel fire,
/// synth precision*, synth recall, synth F1*). `None` = not reported.
pub type T5Row = (
    &'static str,
    Option<f64>,
    Option<f64>,
    Option<f64>,
    Option<f64>,
    Option<f64>,
    Option<f64>,
    Option<f64>,
);

/// Paper Table 5.
#[allow(clippy::type_complexity)]
pub const PAPER_TABLE5: &[T5Row] = &[
    (
        "WMRR",
        Some(70.0),
        Some(2.93),
        Some(65.8),
        Some(2.76),
        Some(55.3),
        Some(66.8),
        Some(60.5),
    ),
    (
        "HoloClean",
        Some(67.0),
        Some(3.87),
        Some(65.2),
        Some(2.50),
        Some(52.1),
        Some(64.1),
        Some(57.5),
    ),
    (
        "Raha",
        Some(68.9),
        Some(4.03),
        Some(66.4),
        Some(3.74),
        Some(59.5),
        Some(68.2),
        Some(63.6),
    ),
    (
        "Potters-Wheel",
        Some(66.2),
        None,
        None,
        None,
        None,
        None,
        None,
    ),
    (
        "Auto-Detect",
        Some(78.5),
        None,
        None,
        None,
        None,
        None,
        None,
    ),
    (
        "T5",
        Some(60.8),
        Some(27.47),
        Some(53.8),
        Some(19.02),
        Some(40.5),
        Some(56.3),
        Some(47.1),
    ),
    (
        "GPT-3.5",
        Some(73.9),
        Some(10.99),
        Some(60.4),
        Some(11.71),
        Some(50.1),
        Some(69.8),
        Some(58.3),
    ),
    (
        "DataVinci",
        Some(80.1),
        Some(16.85),
        Some(75.1),
        Some(14.39),
        Some(67.4),
        Some(73.4),
        Some(70.3),
    ),
];

/// Paper Table 6 (repair): (system, wiki certain, wiki possible,
/// excel certain, excel possible, synth precision*, recall, F1*).
pub const PAPER_TABLE6: &[T5Row] = &[
    (
        "WMRR",
        Some(61.1),
        Some(57.8),
        Some(59.2),
        Some(55.6),
        Some(43.2),
        Some(61.1),
        Some(50.6),
    ),
    (
        "HoloClean",
        Some(58.4),
        Some(55.6),
        Some(59.0),
        Some(54.9),
        Some(41.3),
        Some(58.6),
        Some(48.5),
    ),
    (
        "Raha + GPT-3.5",
        Some(58.6),
        Some(54.8),
        Some(56.4),
        Some(53.5),
        Some(45.2),
        Some(62.0),
        Some(52.3),
    ),
    (
        "Potters-Wheel + GPT-3.5",
        Some(56.2),
        Some(52.0),
        None,
        None,
        None,
        None,
        None,
    ),
    (
        "Auto-Detect + GPT-3.5",
        Some(66.9),
        Some(63.3),
        None,
        None,
        None,
        None,
        None,
    ),
    (
        "T5",
        Some(41.0),
        Some(37.8),
        Some(37.7),
        Some(35.2),
        Some(27.9),
        Some(47.0),
        Some(35.0),
    ),
    (
        "GPT-3.5",
        Some(63.9),
        Some(55.5),
        Some(52.1),
        Some(48.9),
        Some(38.2),
        Some(63.8),
        Some(47.8),
    ),
    (
        "DataVinci",
        Some(71.3),
        Some(64.9),
        Some(71.2),
        Some(64.6),
        Some(54.1),
        Some(68.9),
        Some(60.6),
    ),
];

/// Paper Table 7: repair precision on correctly detected errors.
#[allow(clippy::type_complexity)]
pub const PAPER_TABLE7: &[(&str, Option<f64>, Option<f64>, Option<f64>)] = &[
    ("WMRR", Some(87.3), Some(89.9), Some(78.2)),
    ("HoloClean", Some(87.1), Some(90.5), Some(79.3)),
    ("Raha + GPT-3.5", Some(85.0), Some(85.0), Some(76.0)),
    ("Potters-Wheel + GPT-3.5", Some(84.9), None, None),
    ("Auto-Detect + GPT-3.5", Some(85.2), None, None),
    ("T5", Some(67.4), Some(70.1), Some(68.8)),
    ("GPT-3.5", Some(86.5), Some(86.3), Some(76.3)),
    ("DataVinci", Some(89.0), Some(91.2), Some(80.3)),
];

/// Paper Table 8: (row, single formula %, single cell %, multi formula %,
/// multi cell %).
pub const PAPER_TABLE8: &[(&str, f64, f64, f64, f64)] = &[
    ("No Repair", 0.0, 85.8, 0.0, 81.4),
    ("WMRR", 32.6, 94.4, 29.6, 90.1),
    ("Raha + GPT-3.5", 34.5, 92.6, 31.4, 88.3),
    ("T5", 11.2, 89.4, 6.4, 86.2),
    ("DataVinci Unsupervised", 43.2, 94.3, 35.7, 90.9),
    ("DataVinci + Execution", 54.0, 96.5, 47.8, 94.0),
];

/// Paper Table 9 ablations on the synthetic benchmark: (model, precision,
/// recall, F1).
pub const PAPER_TABLE9: &[(&str, f64, f64, f64)] = &[
    ("No semantic abstraction", 50.3, 62.9, 55.9),
    ("Limited semantic concretization", 52.0, 65.6, 58.0),
    ("No learned concretization", 46.3, 51.0, 48.5),
    ("Edit distance ranking", 53.2, 67.1, 69.3),
    ("DataVinci", 54.1, 68.9, 60.6),
];

/// Paper Table 10: (system, time ms, disk MB, memory MB).
pub const PAPER_TABLE10: &[(&str, f64, Option<f64>, Option<f64>)] = &[
    ("WMRR", 247.4, Some(4.6), Some(914.5)),
    ("HoloClean", 1049.3, Some(996.3), Some(1647.2)),
    ("Raha", 321.8, Some(65.3), Some(645.4)),
    ("Potters-Wheel*", 110.0, None, None),
    ("Auto-Detect*", 290.0, None, None),
    ("T5", 858.3, Some(886.2), Some(1534.2)),
    ("GPT-3.5", 1325.6, None, None),
    ("DataVinci", 261.5, Some(5.6), Some(10.5)),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_have_expected_shapes() {
        assert_eq!(PAPER_TABLE5.len(), 8);
        assert_eq!(PAPER_TABLE6.len(), 8);
        assert_eq!(PAPER_TABLE7.len(), 8);
        assert_eq!(PAPER_TABLE8.len(), 6);
        assert_eq!(PAPER_TABLE9.len(), 5);
        assert_eq!(PAPER_TABLE10.len(), 8);
        // DataVinci leads precision in the paper's Table 5.
        let dv = PAPER_TABLE5.last().unwrap();
        assert!(PAPER_TABLE5[..7]
            .iter()
            .all(|r| r.1.unwrap_or(0.0) < dv.1.unwrap()));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(80.123), "80.1");
        assert_eq!(pct(0.0), "0.0");
    }
}
