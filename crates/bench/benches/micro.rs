//! Criterion micro-benchmarks over the hot paths backing Table 10:
//! pattern profiling, NFA matching, the repair DP, semantic abstraction,
//! formula execution, and the end-to-end column clean.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use datavinci_bench::sample_noisy_table;
use datavinci_core::{minimal_edit_program, DataVinci};
use datavinci_formula::ColumnProgram;
use datavinci_profile::{profile_plain, ProfilerConfig};
use datavinci_regex::{CharClass, CompiledPattern, MaskedString, Pattern};
use datavinci_semantic::{GazetteerLlm, SemanticAbstractor};
use datavinci_table::Table;

fn sample_table(rows: usize) -> Table {
    sample_noisy_table(42, rows)
}

fn bench_profiler(c: &mut Criterion) {
    let table = sample_table(200);
    let values: Vec<String> = table.column(2).unwrap().rendered();
    c.bench_function("profile_200_row_column", |b| {
        b.iter(|| profile_plain(black_box(&values), &ProfilerConfig::default()))
    });
}

fn bench_nfa_matching(c: &mut Criterion) {
    let pattern = CompiledPattern::compile(Pattern::plus(Pattern::concat([
        Pattern::lit("A"),
        Pattern::Class(CharClass::Digit),
        Pattern::lit("."),
    ])));
    let values: Vec<MaskedString> = (0..64)
        .map(|i| MaskedString::from_plain(&"A1.".repeat(i % 8 + 1)))
        .collect();
    c.bench_function("nfa_match_64_values", |b| {
        b.iter(|| {
            values
                .iter()
                .filter(|v| pattern.matches(black_box(v)))
                .count()
        })
    });
}

fn bench_repair_dp(c: &mut Criterion) {
    let pattern = CompiledPattern::compile(Pattern::concat([
        Pattern::Class(CharClass::Upper),
        Pattern::class_n(CharClass::Upper, 1),
        Pattern::lit("-"),
        Pattern::class_n(CharClass::Digit, 3),
        Pattern::lit("-"),
        Pattern::disj(["PRO", "QUA", "JUN"]),
    ]));
    let value = MaskedString::from_plain("usa_837");
    c.bench_function("repair_dp_mixed_pattern", |b| {
        b.iter(|| {
            let dag = pattern.dag_for_len(value.len());
            minimal_edit_program(black_box(&dag), black_box(&value))
        })
    });
}

fn bench_semantic_abstraction(c: &mut Criterion) {
    let abstractor = SemanticAbstractor::new(GazetteerLlm::new());
    let values: Vec<String> = ["US-837-PRO", "usa_201", "FR-475-QUA", "DE-204-PRO"]
        .iter()
        .cycle()
        .take(100)
        .map(|s| s.to_string())
        .collect();
    c.bench_function("semantic_abstract_100_values", |b| {
        b.iter(|| abstractor.abstract_column("Player ID", black_box(&values)))
    });
}

fn bench_formula_execution(c: &mut Criterion) {
    let table = sample_table(400);
    let program = ColumnProgram::parse("=SEARCH(\"-\", [@[Player ID]]) * 2").expect("parses");
    c.bench_function("formula_execute_400_rows", |b| {
        b.iter(|| program.execution_groups(black_box(&table)))
    });
}

fn bench_end_to_end_clean(c: &mut Criterion) {
    let dv = DataVinci::new();
    c.bench_function("clean_column_end_to_end_120_rows", |b| {
        b.iter_batched(
            || sample_table(120),
            |table| dv.clean_column(black_box(&table), 2),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_profiler,
        bench_nfa_matching,
        bench_repair_dp,
        bench_semantic_abstraction,
        bench_formula_execution,
        bench_end_to_end_clean
);
criterion_main!(micro);
