//! Allocation-regression gate over the end-to-end hot path.
//!
//! The single-core overhaul (zero-copy ingestion, pooled profiling, arena
//! interning) is about allocation discipline as much as wall time — wall
//! time flakes on a loaded CI machine, allocation counts do not. This test
//! cleans the shared 120-row noisy column once to warm lazily-built state,
//! then counts the allocations of a second identical clean through the
//! metering allocator and asserts the per-row figure stays under a
//! committed budget.
//!
//! The budget is deliberately loose (~2× the measured figure) so it only
//! trips on structural regressions — a new per-row `String`, a dropped
//! pool — not on platform or layout jitter. This file holds exactly one
//! test: a second concurrent test would pollute the global counter.

use datavinci_bench::{alloc_meter, sample_noisy_table};
use datavinci_core::DataVinci;

#[global_allocator]
static ALLOC: alloc_meter::MeteredAlloc = alloc_meter::MeteredAlloc;

/// Committed budget: allocations per row for one 120-row column clean.
/// Measured ≈268/row after the hot-path overhaul (≈278/row at the seed);
/// regressions past 2× that are structural.
const ALLOCS_PER_ROW_BUDGET: f64 = 540.0;

#[test]
fn e2e_clean_stays_under_alloc_budget() {
    let table = sample_noisy_table(42, 120);
    let dv = DataVinci::new();

    // Warm run: gazetteers, semantic memos, and any lazily-built statics
    // allocate once and are excluded from the measured run.
    let warm = dv.clean_column(&table, 2);

    let before = alloc_meter::alloc_count();
    let report = dv.clean_column(&table, 2);
    let allocs = alloc_meter::alloc_count() - before;
    let per_row = allocs as f64 / table.n_rows() as f64;

    assert_eq!(
        format!("{warm:#?}"),
        format!("{report:#?}"),
        "warm and measured cleans must agree"
    );
    eprintln!(
        "e2e clean of {} rows: {allocs} allocations ({per_row:.1}/row, budget {ALLOCS_PER_ROW_BUDGET}/row)",
        table.n_rows()
    );
    assert!(
        per_row < ALLOCS_PER_ROW_BUDGET,
        "allocation regression: {per_row:.1} allocs/row exceeds the {ALLOCS_PER_ROW_BUDGET}/row budget"
    );
}
