//! `datavinci-serve` protocol tests: in-process daemon on an ephemeral
//! port, real sockets, concurrent clients. The core contract is identity:
//! a daemon-cleaned CSV is byte-for-byte what the batch engine produces.

use std::path::PathBuf;

use datavinci_engine::json::Json;
use datavinci_engine::serve::roundtrip;
use datavinci_engine::{Engine, Server, ServerConfig};
use datavinci_table::io;

/// Boots a TCP server on an ephemeral port; returns its address and the
/// join handle of the accept loop (joined after a shutdown op).
fn boot(cfg: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind_tcp("127.0.0.1:0", cfg).expect("bind");
    let address = server.address();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (address, handle)
}

fn shutdown(address: &str, handle: std::thread::JoinHandle<()>) {
    let response = roundtrip(address, &Json::obj().field("op", Json::str("shutdown")))
        .expect("shutdown roundtrip");
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    handle.join().expect("accept loop exits");
}

fn clean_request(csv: &str) -> Json {
    Json::obj()
        .field("op", Json::str("clean"))
        .field("csv", Json::str(csv))
}

const PLAYERS_CSV: &str = "Category,Player ID\n\
    Professional,IN-674-PRO\n\
    Professional,usa_837\n\
    Professional,DZ-173-PRO\n\
    Qualifier,US-201-QUA\n\
    Qualifier,CN-924-QUA\n\
    Professional,FR-475-PRO\n";

/// What the local batch engine produces for the same bytes.
fn batch_cleaned(csv: &str) -> String {
    let table = io::parse_csv(csv).expect("fixture parses");
    let engine = Engine::new();
    let report = engine.clean_table(&table);
    io::to_csv(&Engine::apply(&table, &report.table_report()))
}

#[test]
fn ping_pongs() {
    let (address, handle) = boot(ServerConfig::default());
    let response = roundtrip(&address, &Json::obj().field("op", Json::str("ping"))).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(response.get("pong"), Some(&Json::Bool(true)));
    shutdown(&address, handle);
}

#[test]
fn daemon_clean_is_byte_identical_to_batch() {
    let (address, handle) = boot(ServerConfig::default());
    let response = roundtrip(&address, &clean_request(PLAYERS_CSV)).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response:?}");
    assert_eq!(
        response.get("csv").and_then(Json::as_str).unwrap(),
        batch_cleaned(PLAYERS_CSV),
    );
    assert_eq!(response.get("n_repairs").and_then(Json::as_i64), Some(1));
    shutdown(&address, handle);
}

#[test]
fn concurrent_clients_share_one_warm_cache_and_agree_bytewise() {
    let (address, handle) = boot(ServerConfig::default());
    let expected = batch_cleaned(PLAYERS_CSV);

    // First request warms the tenant cache.
    let warmup = roundtrip(&address, &clean_request(PLAYERS_CSV)).unwrap();
    assert_eq!(warmup.get("ok"), Some(&Json::Bool(true)));

    let clients: Vec<_> = (0..4)
        .map(|_| {
            let address = address.clone();
            std::thread::spawn(move || roundtrip(&address, &clean_request(PLAYERS_CSV)))
        })
        .collect();
    let mut hits = 0i64;
    for client in clients {
        let response = client.join().unwrap().unwrap();
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response:?}");
        assert_eq!(
            response.get("csv").and_then(Json::as_str).unwrap(),
            expected,
        );
        hits += response
            .get("cache_hits")
            .and_then(Json::as_i64)
            .unwrap_or(0);
    }
    // Concurrent clients of one tenant share the warmed cache: all four
    // re-cleans of identical content are served hot.
    assert_eq!(hits, 4 * 2, "each clean's 2 columns should hit");
    shutdown(&address, handle);
}

#[test]
fn tenants_are_isolated_through_the_daemon() {
    let (address, handle) = boot(ServerConfig::default());
    let for_tenant = |tenant: &str| clean_request(PLAYERS_CSV).field("tenant", Json::str(tenant));
    let a = roundtrip(&address, &for_tenant("a")).unwrap();
    assert_eq!(a.get("cache_hits").and_then(Json::as_i64), Some(0));
    // Tenant b cleans the same bytes: cold again (no cross-tenant sharing).
    let b = roundtrip(&address, &for_tenant("b")).unwrap();
    assert_eq!(b.get("cache_hits").and_then(Json::as_i64), Some(0));
    // Tenant a again: warm.
    let a2 = roundtrip(&address, &for_tenant("a")).unwrap();
    assert_eq!(a2.get("cache_hits").and_then(Json::as_i64), Some(2));

    let stats = roundtrip(&address, &Json::obj().field("op", Json::str("stats"))).unwrap();
    let tenants = stats.get("tenants").expect("tenant section");
    assert!(tenants.get("a").is_some() && tenants.get("b").is_some());
    shutdown(&address, handle);
}

#[test]
fn malformed_requests_get_positioned_errors_not_dropped_connections() {
    let (address, handle) = boot(ServerConfig::default());
    for (request, expect) in [
        ("{not json", "bad request"),
        ("{\"no\":\"op\"}", "missing \"op\""),
        ("{\"op\":\"warp\"}", "unknown op"),
        ("{\"op\":\"clean\"}", "needs a \"csv\""),
        ("{\"op\":\"clean\",\"csv\":\"\"}", "csv:"),
        ("{\"op\":\"clean\",\"csv\":\"x\",\"tenant\":7}", "tenant"),
    ] {
        let parsed = Json::parse(request).ok();
        let response = match parsed {
            Some(json) => roundtrip(&address, &json).unwrap(),
            // Raw malformed line: drive the socket by hand.
            None => {
                use std::io::{BufRead, BufReader, Write};
                let mut conn = std::net::TcpStream::connect(&address).unwrap();
                writeln!(conn, "{request}").unwrap();
                let mut line = String::new();
                BufReader::new(conn).read_line(&mut line).unwrap();
                Json::parse(&line).unwrap()
            }
        };
        assert_eq!(
            response.get("ok"),
            Some(&Json::Bool(false)),
            "request {request:?}"
        );
        let error = response.get("error").and_then(Json::as_str).unwrap();
        assert!(error.contains(expect), "request {request:?} → {error:?}");
    }
    // The server is still healthy after all that abuse.
    let response = roundtrip(&address, &Json::obj().field("op", Json::str("ping"))).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    let stats = roundtrip(&address, &Json::obj().field("op", Json::str("stats"))).unwrap();
    let errors = stats
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("serve.errors"))
        .and_then(Json::as_i64)
        .unwrap_or(0);
    assert!(errors >= 6, "serve.errors={errors}");
    shutdown(&address, handle);
}

#[test]
fn daemon_persists_to_its_store_across_restarts() {
    let dir = std::env::temp_dir().join(format!("dv-serve-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || ServerConfig {
        store_dir: Some(PathBuf::from(&dir)),
        ..ServerConfig::default()
    };

    let (address, handle) = boot(cfg());
    let cold = roundtrip(&address, &clean_request(PLAYERS_CSV)).unwrap();
    assert_eq!(cold.get("cache_hits").and_then(Json::as_i64), Some(0));
    shutdown(&address, handle);

    // A brand-new daemon process over the same store: first clean is warm.
    let (address, handle) = boot(cfg());
    let warm = roundtrip(&address, &clean_request(PLAYERS_CSV)).unwrap();
    assert_eq!(warm.get("cache_hits").and_then(Json::as_i64), Some(2));
    assert_eq!(
        warm.get("csv").and_then(Json::as_str),
        cold.get("csv").and_then(Json::as_str),
    );
    shutdown(&address, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unix_socket_transport_works() {
    let path = std::env::temp_dir().join(format!("dv-serve-{}.sock", std::process::id()));
    let server = Server::bind_unix(&path, ServerConfig::default()).expect("bind unix");
    let address = server.address();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let response = roundtrip(&address, &clean_request(PLAYERS_CSV)).unwrap();
    assert_eq!(
        response.get("csv").and_then(Json::as_str).unwrap(),
        batch_cleaned(PLAYERS_CSV),
    );
    shutdown(&address, handle);
    assert!(!path.exists(), "socket file cleaned up on shutdown");
}
