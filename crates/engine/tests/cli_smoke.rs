//! Smoke test for the `datavinci-clean` CLI: fixture CSV in → repaired CSV
//! + JSON report out, exercised through the real binary.

use std::path::PathBuf;
use std::process::Command;

fn run_cli(args: &[&str]) -> std::process::Output {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut command = Command::new(cargo);
    command
        .args(["run", "--quiet", "--bin", "datavinci-clean", "--offline"])
        .current_dir(env!("CARGO_MANIFEST_DIR"));
    if !cfg!(debug_assertions) {
        command.arg("--release");
    }
    command.arg("--");
    command.args(args);
    command.output().expect("spawn datavinci-clean")
}

#[test]
fn cleans_fixture_csv_and_writes_report() {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/players.csv");
    let dir = std::env::temp_dir().join("datavinci-clean-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let out_csv = dir.join("players.cleaned.csv");
    let out_json = dir.join("players.report.json");

    let output = run_cli(&[
        fixture.to_str().unwrap(),
        "-o",
        out_csv.to_str().unwrap(),
        "--report",
        out_json.to_str().unwrap(),
        "--workers",
        "2",
        "--strategy",
        "planner",
        "--types",
    ]);
    assert!(
        output.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );

    // Figure 2's flagship repair must land in the CSV…
    let csv = std::fs::read_to_string(&out_csv).unwrap();
    assert!(csv.contains("US-837-PRO"), "{csv}");
    assert!(!csv.contains("usa_837"), "{csv}");
    // …and the §3.2 quarter repair too.
    assert!(csv.contains("Q3-2001"), "{csv}");

    // The JSON report records repairs, cache telemetry, the session's
    // reuse stats (exactly one FeatureSet generation for the table), and
    // the --types detections.
    let json = std::fs::read_to_string(&out_json).unwrap();
    assert!(json.contains("\"repaired\": \"US-837-PRO\""), "{json}");
    assert!(json.contains("\"workers\": 2"), "{json}");
    assert!(json.contains("\"cache\""), "{json}");
    assert!(json.contains("\"feature_generations\": 1"), "{json}");
    assert!(json.contains("\"semantic_type\": \"country\""), "{json}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejects_missing_input_with_usage() {
    let output = run_cli(&[]);
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage: datavinci-clean"), "{stderr}");
}
