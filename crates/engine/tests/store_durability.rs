//! Durable artifact store: warm restarts must be byte-identical to cold
//! cleans, hostile bytes must be rejected (never trusted, never a panic),
//! and tenants must never share artifacts.

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use datavinci_core::TableReport;
use datavinci_corpus::{random_spec, NoiseModel};
use datavinci_engine::{ArtifactStore, Engine, EngineConfig, ProfileCache, StoreError};
use datavinci_table::{Column, Table};

/// A unique, self-cleaning scratch directory per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let path = std::env::temp_dir().join(format!("dv-store-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn canon(report: &TableReport) -> String {
    format!("{report:#?}")
}

fn engine() -> Engine {
    Engine::with_config(EngineConfig {
        workers: 1,
        cache: true,
        ..EngineConfig::default()
    })
}

fn engine_with_store(dir: &Path, tenant: &str) -> Engine {
    let mut engine = engine();
    let store = ArtifactStore::open(dir, tenant).expect("open store");
    engine.attach_store(store).expect("attach store");
    engine
}

fn quarters() -> Table {
    Table::new(vec![Column::from_texts(
        "Quarter",
        &["Q4-2002", "Q3-2002", "Q1-2001", "Q2-2002", "Q32001"],
    )])
}

fn generated_table(seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = random_spec(&mut rng, 2.0, 20.0);
    let clean = spec.generate(&mut rng);
    let (dirty, _) = NoiseModel::default().corrupt_table(&mut rng, &clean);
    dirty
}

/// Clean `table` through a store at `dir`, restart (fresh engine, same
/// store), re-clean, and return (cold canon, warm canon, warm hits,
/// warm cleaned-column count).
fn restart_roundtrip(dir: &Path, table: &Table) -> (String, String, usize, usize) {
    let first = engine_with_store(dir, "default");
    let cold = first.clean_table(table);
    first.flush_store().expect("flush");
    drop(first);

    let second = engine_with_store(dir, "default");
    let warm = second.clean_table(table);
    (
        canon(&cold.table_report()),
        canon(&warm.table_report()),
        warm.cache_hits(),
        warm.columns.len(),
    )
}

#[test]
fn warm_restart_is_byte_identical_and_fully_cached() {
    let dir = TempDir::new("restart");
    let table = quarters();
    let (cold, warm, hits, _) = restart_roundtrip(dir.path(), &table);
    assert_eq!(cold, warm);
    assert_eq!(hits, 1, "warm clean must be served from the restored cache");
}

#[test]
fn restart_then_append_resumes_the_restored_snapshot() {
    let dir = TempDir::new("resume");
    let base = Table::new(vec![Column::from_texts(
        "Quarter",
        &["Q4-2002", "Q3-2002", "Q1-2001", "Q2-2002"],
    )]);
    let first = engine_with_store(dir.path(), "default");
    first.clean_table(&base);
    first.flush_store().expect("flush");
    drop(first);

    // New process, grown table: the restored snapshot skeleton must make
    // this an append-resume, and the repair must match the from-scratch one.
    let grown = quarters();
    let second = engine_with_store(dir.path(), "default");
    let report = second.clean_table(&grown);
    assert_eq!(report.columns[0].report.repairs[0].repaired, "Q3-2001");
    let stats = second.cache_stats().expect("cache on");
    assert_eq!(stats.session_resumes, 1, "{stats:?}");
    // Persistence must be faithful: the across-restart result equals the
    // same warm continuation performed in one process.
    let mem = engine();
    mem.clean_table(&base);
    let mem_report = mem.clean_table(&grown);
    assert_eq!(
        canon(&report.table_report()),
        canon(&mem_report.table_report()),
    );
}

#[test]
fn tenants_with_equal_fingerprints_never_share_artifacts() {
    let dir = TempDir::new("tenants");
    let table = quarters();
    let a = engine_with_store(dir.path(), "tenant-a");
    a.clean_table(&table);
    a.flush_store().expect("flush");
    drop(a);

    // Same bytes, different tenant: must be a cold clean, not a warm one.
    let b = engine_with_store(dir.path(), "tenant-b");
    let report = b.clean_table(&table);
    assert_eq!(report.cache_hits(), 0);
    let stats = b.cache_stats().expect("cache on");
    assert_eq!(
        stats.report_hits + stats.session_hits + stats.session_resumes,
        0
    );
    b.flush_store().expect("flush");

    // And the blobs are physically separate files.
    assert!(dir.path().join("tenants/tenant-a/artifacts.dvs").is_file());
    assert!(dir.path().join("tenants/tenant-b/artifacts.dvs").is_file());
}

#[test]
fn format_marker_mismatch_is_refused() {
    let dir = TempDir::new("marker");
    std::fs::create_dir_all(dir.path()).unwrap();
    std::fs::write(dir.path().join("FORMAT"), "datavinci-store/v999\n").unwrap();
    match ArtifactStore::open(dir.path(), "default") {
        Err(StoreError::VersionMismatch { found, .. }) => {
            assert!(found.contains("v999"), "{found}");
        }
        other => panic!(
            "expected version mismatch, got {other:?}",
            other = other.err()
        ),
    }
}

#[test]
fn non_empty_directory_without_marker_is_refused() {
    let dir = TempDir::new("nomarker");
    std::fs::create_dir_all(dir.path()).unwrap();
    std::fs::write(dir.path().join("unrelated.txt"), "hands off").unwrap();
    assert!(matches!(
        ArtifactStore::open(dir.path(), "default"),
        Err(StoreError::VersionMismatch { .. })
    ));
    // The stranger's file must survive the refusal.
    assert!(dir.path().join("unrelated.txt").is_file());
}

#[test]
fn foreign_blob_header_is_refused_as_version_mismatch() {
    let dir = TempDir::new("blobver");
    let store = ArtifactStore::open(dir.path(), "default").unwrap();
    std::fs::write(store.path(), b"NOPE\x01\x00\x00\x00").unwrap();
    let cache = ProfileCache::new();
    let mask_cache = engine().system().mask_cache();
    assert!(matches!(
        store.load_into(&cache, mask_cache),
        Err(StoreError::VersionMismatch { .. })
    ));
}

#[test]
fn invalid_tenant_names_are_rejected() {
    let dir = TempDir::new("badtenant");
    for tenant in ["", ".", "..", "a/b", "a\\b", "a b", "caf\u{e9}"] {
        assert!(
            matches!(
                ArtifactStore::open(dir.path(), tenant),
                Err(StoreError::InvalidTenant { .. })
            ),
            "tenant {tenant:?} should be rejected"
        );
    }
}

#[test]
fn unwritable_store_directory_is_an_io_error() {
    // A regular file where the directory should be: every create path fails.
    let dir = TempDir::new("unwritable");
    std::fs::create_dir_all(dir.path()).unwrap();
    let blocking = dir.path().join("store");
    std::fs::write(&blocking, "i am a file").unwrap();
    match ArtifactStore::open(&blocking, "default") {
        Err(StoreError::Io { path, .. }) => {
            assert!(path.starts_with(&blocking), "{}", path.display());
        }
        other => panic!("expected io error, got {other:?}", other = other.err()),
    }
}

#[test]
fn attach_store_requires_the_cache() {
    let dir = TempDir::new("nocache");
    let mut engine = Engine::with_config(EngineConfig {
        cache: false,
        ..EngineConfig::default()
    });
    let store = ArtifactStore::open(dir.path(), "default").unwrap();
    assert!(matches!(
        engine.attach_store(store),
        Err(StoreError::CacheDisabled)
    ));
}

#[test]
fn size_budget_drops_lru_records_on_flush() {
    let dir = TempDir::new("budget");
    let mut seeded = engine();
    // Minimum budget (4 KiB) with several distinct tables: the flush must
    // evict from the LRU head and the surviving blob must stay loadable.
    let store = ArtifactStore::open_with_budget(dir.path(), "default", 1).unwrap();
    seeded.attach_store(store).unwrap();
    for seed in 0..6 {
        seeded.clean_table(&generated_table(seed));
    }
    let flushed = seeded.flush_store().unwrap().unwrap();
    assert!(flushed.evicted > 0, "{flushed:?}");
    assert!(flushed.bytes <= 4096, "{flushed:?}");
    drop(seeded);

    // Whatever survived the budget must be a fully intact blob.
    let mut warmed = engine();
    let store = ArtifactStore::open_with_budget(dir.path(), "default", 1).unwrap();
    let loaded = warmed.attach_store(store).unwrap();
    assert_eq!(loaded.skipped, 0, "{loaded:?}");
}

/// Truncation at *every* byte offset: a cut blob never panics, never
/// poisons the cache, and whatever loads still cleans identically.
#[test]
fn truncated_blob_is_rejected_cleanly_at_every_offset() {
    let dir = TempDir::new("truncate");
    let table = quarters();
    let cold = canon(&engine().clean_table(&table).table_report());

    let seeded = engine_with_store(dir.path(), "default");
    seeded.clean_table(&table);
    seeded.flush_store().expect("flush");
    drop(seeded);
    let store = ArtifactStore::open(dir.path(), "default").unwrap();
    let blob = std::fs::read(store.path()).expect("blob exists");

    for cut in 0..blob.len() {
        std::fs::write(store.path(), &blob[..cut]).unwrap();
        let mut engine = engine();
        let store = ArtifactStore::open(dir.path(), "default").unwrap();
        // Below the header a cut is a version problem; past it, salvage.
        match engine.attach_store(store) {
            Ok(stats) => {
                assert!(
                    cut >= 8,
                    "cut={cut} inside the header must not load cleanly"
                );
                // Anything lost must be accounted for, not silently absent.
                if cut < blob.len() {
                    assert!(stats.skipped > 0 || stats.bytes + 8 <= cut as u64);
                }
            }
            Err(StoreError::VersionMismatch { .. }) => assert!(cut < 8, "cut={cut}"),
            Err(other) => panic!("cut={cut}: unexpected error {other}"),
        }
        let report = engine.clean_table(&table);
        assert_eq!(canon(&report.table_report()), cold, "cut={cut}");
    }
    std::fs::write(store.path(), &blob).unwrap();
}

/// A flipped bit at *every* byte offset: checksums catch the damage, the
/// loader salvages the intact prefix, and cleaning output is unaffected.
#[test]
fn bit_flipped_blob_never_corrupts_results() {
    let dir = TempDir::new("bitflip");
    let table = quarters();
    let cold = canon(&engine().clean_table(&table).table_report());

    let seeded = engine_with_store(dir.path(), "default");
    seeded.clean_table(&table);
    seeded.flush_store().expect("flush");
    drop(seeded);
    let store = ArtifactStore::open(dir.path(), "default").unwrap();
    let blob = std::fs::read(store.path()).expect("blob exists");

    for at in 0..blob.len() {
        let mut damaged = blob.clone();
        damaged[at] ^= 1 << (at % 8);
        std::fs::write(store.path(), &damaged).unwrap();
        let mut engine = engine();
        let store = ArtifactStore::open(dir.path(), "default").unwrap();
        // Whether the flip lands in the header (version error), a length,
        // a payload, or a checksum, the outcome must be a clean rejection
        // or a verified record — never a panic, never wrong output.
        let _ = engine.attach_store(store);
        let report = engine.clean_table(&table);
        assert_eq!(canon(&report.table_report()), cold, "flip at byte {at}");
    }
    std::fs::write(store.path(), &blob).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Persist → reload → re-clean is byte-identical to the cold clean for
    /// generated noisy tables, and entirely cache-served.
    #[test]
    fn persisted_artifacts_roundtrip_identically(seed in 0u64..500) {
        let dir = TempDir::new("prop");
        let table = generated_table(seed);
        let (cold, warm, hits, cleaned_cols) = restart_roundtrip(dir.path(), &table);
        prop_assert_eq!(cold, warm, "seed={}", seed);
        // Every cleaned column of the warm pass came from the store.
        prop_assert_eq!(hits, cleaned_cols, "seed={}", seed);
    }
}
