//! Engine ⇔ sequential equivalence: the parallel, cache-aware engine must
//! produce byte-identical reports and repaired tables to the sequential
//! `DataVinci::clean_table` loop, across generated corpora, worker counts,
//! and cache states.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use datavinci_core::{DataVinci, TableReport};
use datavinci_corpus::{random_spec, synthetic_errors, NoiseModel, Scale};
use datavinci_engine::{CacheOutcome, Engine, EngineConfig};
use datavinci_table::{io, Table};

/// A canonical rendering of a table report: every field that reaches users.
fn canon(report: &TableReport) -> String {
    format!("{report:#?}")
}

fn generated_table(seed: u64, mean_cols: f64, mean_rows: f64, noisy: bool) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = random_spec(&mut rng, mean_cols, mean_rows);
    let clean = spec.generate(&mut rng);
    if noisy {
        let (dirty, _) = NoiseModel::default().corrupt_table(&mut rng, &clean);
        dirty
    } else {
        clean
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Parallel engine output is byte-identical to sequential cleaning for
    /// generated tables, across worker counts, with and without cache.
    #[test]
    fn engine_equals_sequential(seed in 0u64..1000, workers in 1usize..9, cache_bit in 0usize..2) {
        let cache = cache_bit == 1;
        let table = generated_table(seed, 3.0, 24.0, true);
        let sequential = DataVinci::new().clean_table(&table);
        let engine = Engine::with_config(EngineConfig { workers, cache, ..EngineConfig::default() });
        let report = engine.clean_table(&table);
        prop_assert_eq!(
            canon(&report.table_report()),
            canon(&sequential),
            "seed={} workers={} cache={}", seed, workers, cache
        );
        // Applying the engine's repairs equals applying the sequential ones,
        // down to the CSV bytes.
        let a = io::to_csv(&Engine::apply(&table, &report.table_report()));
        let b = io::to_csv(&Engine::apply(&table, &sequential));
        prop_assert_eq!(a, b);
    }

    /// A warm re-clean is served entirely from the report cache and still
    /// renders identically.
    #[test]
    fn warm_cache_is_identical(seed in 0u64..500) {
        let table = generated_table(seed, 2.0, 20.0, true);
        let engine = Engine::with_config(EngineConfig { workers: 4, cache: true, ..EngineConfig::default() });
        let cold = engine.clean_table(&table);
        let warm = engine.clean_table(&table);
        prop_assert_eq!(canon(&cold.table_report()), canon(&warm.table_report()));
        prop_assert!(warm.columns.iter().all(|c| c.cache == CacheOutcome::ReportHit));
    }
}

#[test]
fn engine_equals_sequential_on_benchmark_tables() {
    // The corpus benchmark the acceptance criteria name, at smoke scale.
    let bench = synthetic_errors(
        2024,
        Scale {
            n_tables: 4,
            row_divisor: 8,
        },
    );
    let tables: Vec<Table> = bench.tables.into_iter().map(|t| t.dirty).collect();

    let dv = DataVinci::new();
    let sequential: Vec<String> = tables.iter().map(|t| canon(&dv.clean_table(t))).collect();

    for workers in [1, 4] {
        let engine = Engine::with_config(EngineConfig {
            workers,
            cache: true,
            ..EngineConfig::default()
        });
        let batch = engine.clean_batch(&tables);
        let parallel: Vec<String> = batch
            .tables
            .iter()
            .map(|r| canon(&r.table_report()))
            .collect();
        assert_eq!(parallel, sequential, "workers={workers}");
    }
}

#[test]
fn batch_warm_pass_reports_cache_telemetry() {
    let bench = synthetic_errors(
        7,
        Scale {
            n_tables: 3,
            row_divisor: 8,
        },
    );
    let tables: Vec<Table> = bench.tables.into_iter().map(|t| t.dirty).collect();
    let engine = Engine::with_config(EngineConfig {
        workers: 4,
        cache: true,
        ..EngineConfig::default()
    });
    let cold = engine.clean_batch(&tables);
    assert_eq!(cold.cache_hits(), 0);
    let warm = engine.clean_batch(&tables);
    let n_columns: usize = warm.tables.iter().map(|t| t.columns.len()).sum();
    assert_eq!(warm.cache_hits(), n_columns);
    assert!(warm.cache.report_hits >= n_columns as u64);
    assert_eq!(
        cold.tables
            .iter()
            .map(|t| canon(&t.table_report()))
            .collect::<Vec<_>>(),
        warm.tables
            .iter()
            .map(|t| canon(&t.table_report()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn append_in_new_format_falls_back_to_full_profiling() {
    // The appended rows form a *new* consistent format the prior patterns
    // never saw. Blind profile reuse would flag all of them as errors;
    // the engine must detect that the prior language broke, re-profile,
    // and end up byte-identical to a fresh sequential clean.
    let base: Vec<String> = (10..30).map(|i| format!("A-{i}")).collect();
    let mut grown = base.clone();
    grown.extend((10..30).map(|i| format!("{i}/B")));

    let base_table = Table::new(vec![datavinci_table::Column::from_texts("ids", &base)]);
    let grown_table = Table::new(vec![datavinci_table::Column::from_texts("ids", &grown)]);

    let engine = Engine::new();
    engine.clean_table(&base_table);
    let report = engine.clean_table(&grown_table);
    let stats = engine.cache_stats().unwrap();
    assert_eq!(stats.append_fallbacks, 1, "{stats:?}");
    assert_eq!(report.columns[0].cache, CacheOutcome::Miss);

    let sequential = DataVinci::new().clean_table(&grown_table);
    assert_eq!(canon(&report.table_report()), canon(&sequential));
}

#[test]
fn append_only_column_reuses_profile_without_reprofiling() {
    // Build a clean base, clean it, then append rows (one erroneous) and
    // re-clean: the engine must classify the column as append-only and the
    // rescored profile must still catch the appended error.
    let base = generated_table(42, 1.0, 30.0, false);
    let col = base.column(0).unwrap();
    if col.text_fraction() < 0.5 {
        return; // generated a non-text single column; nothing to assert
    }
    let engine = Engine::new();
    engine.clean_table(&base);

    let mut grown_col = col.clone();
    for v in col.values().iter().take(4) {
        grown_col.values_mut().push(v.clone());
    }
    let grown = Table::new(vec![grown_col]);
    let report = engine.clean_table(&grown);
    if !report.columns.is_empty() {
        assert_eq!(report.columns[0].cache, CacheOutcome::AppendHit);
        assert_eq!(engine.cache_stats().unwrap().append_hits, 1);
    }
}
