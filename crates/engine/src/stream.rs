//! Streaming cleaning: repair rows chunk by chunk with bounded memory.
//!
//! A [`StreamCleaner`] consumes complete row batches (typically from a
//! [`datavinci_table::CsvChunkReader`] over a file or stdin) and emits each
//! batch's *repaired* rows as soon as the batch is cleaned — rows are final
//! once emitted. Cleaning runs through the full [`Engine`] stack, so all
//! the incremental machinery built for append-only growth does the heavy
//! lifting:
//!
//! * each chunk's clean **resumes the previous chunk's session** via the
//!   cache's snapshot layer — the rendered matrix, row interner, and value
//!   pools are extended over the new rows, never rebuilt
//!   ([`datavinci_core::AnalysisSession::resume`]);
//! * each column's learned profile rides the **append cache arm** — prior
//!   patterns are re-scored against the appended rows, with the engine's
//!   usual fallback to full re-profiling when the appended rows break the
//!   learned language.
//!
//! Memory is bounded by the **window**: when the resident row window
//! exceeds [`StreamConfig::window_rows`], already-emitted rows are dropped
//! and profiling restarts on the next window (the column cache keeps the
//! learned artifacts, but a fresh window's content no longer prefix-matches
//! them, so they only short-circuit exact re-occurrences). Peak allocation
//! is therefore a function of window + chunk size, independent of how many
//! total rows flow through — the property `--bin stream` meters and CI
//! gates on.
//!
//! On a *stationary* stream — value distributions that repeat chunk over
//! chunk, the regime append re-scoring targets — the emitted output is
//! byte-identical to batch-cleaning the same finite input in one call (the
//! stream bench asserts this identity; `tests/stream_vs_batch.rs` checks it
//! differentially, compaction included).

use std::time::{Duration, Instant};

use crate::engine::{Engine, EngineConfig};
use crate::report::EngineReport;
use datavinci_core::DataVinci;
use datavinci_table::{io, CellValue, Column, Table};

/// Streaming configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamConfig {
    /// Worker threads for the inner engine; `0` means one per hardware
    /// thread.
    pub workers: usize,
    /// Maximum resident (already-emitted) rows retained as cleaning context
    /// before compaction drops them; `0` keeps every row (no compaction —
    /// memory grows with the stream).
    pub window_rows: usize,
    /// Record structured telemetry on the inner engine (per-chunk
    /// `stream.*` counters and gauges plus the engine's own spans and
    /// histograms). Off by default.
    pub telemetry: bool,
}

/// One repair emitted for a streamed row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRepair {
    /// Column index.
    pub col: usize,
    /// Absolute row index in the stream (0-based over data rows).
    pub row: usize,
    /// The original cell text.
    pub original: String,
    /// The repaired cell text.
    pub repaired: String,
}

/// What one pushed chunk produced.
#[derive(Debug)]
pub struct ChunkOutcome {
    /// Absolute stream index of the chunk's first row.
    pub first_row: usize,
    /// Rows in the chunk.
    pub n_rows: usize,
    /// The chunk's rows after repair, as CSV lines (no header) — append to
    /// the emitted header for a byte-exact repaired CSV stream.
    pub csv: String,
    /// Repairs applied to this chunk's rows, in (col, row) order.
    pub repairs: Vec<StreamRepair>,
    /// The engine report for the window clean that served this chunk.
    pub report: EngineReport,
    /// Whether the window was compacted before this chunk.
    pub compacted: bool,
    /// Wall time for this chunk end-to-end (compaction + append + window
    /// clean + emission).
    pub elapsed: Duration,
}

/// The chunk-at-a-time cleaner (see the module docs).
pub struct StreamCleaner {
    engine: Engine,
    /// The resident window: recently streamed rows kept as cleaning
    /// context. Every resident row has already been emitted.
    resident: Table,
    /// Absolute stream index of resident row 0.
    resident_start: usize,
    window_rows: usize,
    /// Total data rows streamed.
    n_rows: usize,
    /// Total repairs emitted.
    n_repairs: usize,
    /// Windows dropped by compaction.
    compactions: usize,
}

impl StreamCleaner {
    /// A cleaner for a stream with the given header, using a default
    /// [`DataVinci`] system.
    pub fn new(header: &[String], cfg: StreamConfig) -> StreamCleaner {
        StreamCleaner::with_system(DataVinci::new(), header, cfg)
    }

    /// A cleaner around an explicitly configured system.
    ///
    /// The inner engine's cache is bounded tightly when a window is set:
    /// every chunk creates new column fingerprints, so an unbounded cache
    /// would grow with the stream length, defeating the windowed memory
    /// bound.
    pub fn with_system(dv: DataVinci, header: &[String], cfg: StreamConfig) -> StreamCleaner {
        let cache_capacity = if cfg.window_rows > 0 {
            (4 * header.len()).max(16)
        } else {
            crate::cache::DEFAULT_CACHE_CAPACITY
        };
        let engine = Engine::with_system(
            dv,
            EngineConfig {
                workers: cfg.workers,
                cache: true,
                cache_capacity,
                telemetry: cfg.telemetry,
                repair_strategy: None,
            },
        );
        StreamCleaner {
            engine,
            resident: Table::new(
                header
                    .iter()
                    .map(|name| Column::new(name.clone(), Vec::new()))
                    .collect(),
            ),
            resident_start: 0,
            window_rows: cfg.window_rows,
            n_rows: 0,
            n_repairs: 0,
            compactions: 0,
        }
    }

    /// The stream's header record, as one CSV line.
    pub fn csv_header(&self) -> String {
        io::csv_header(&self.resident)
    }

    /// Total data rows streamed so far.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Total repairs emitted so far.
    pub fn n_repairs(&self) -> usize {
        self.n_repairs
    }

    /// Times the resident window was compacted.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// Rows currently resident as cleaning context (bounded by the window).
    pub fn resident_rows(&self) -> usize {
        self.resident.n_rows()
    }

    /// The inner engine (cache telemetry, worker count).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Cleans one batch of complete rows (each `rows[i]` must have one
    /// field per header column — [`datavinci_table::CsvChunkReader`]
    /// guarantees this) and returns their repaired form. The rows are final
    /// once returned: later chunks can refine the learned column language,
    /// but never retract an emitted row.
    pub fn push_rows(&mut self, rows: &[Vec<String>]) -> ChunkOutcome {
        let started = Instant::now();
        // Compact before appending: every resident row is already emitted,
        // so dropping the window only sheds context, never output.
        let compacted = self.window_rows > 0 && self.resident.n_rows() >= self.window_rows;
        if compacted {
            self.compactions += 1;
            self.resident_start += self.resident.n_rows();
            let header: Vec<String> = self
                .resident
                .headers()
                .iter()
                .map(|h| h.to_string())
                .collect();
            self.resident = Table::new(
                header
                    .into_iter()
                    .map(|name| Column::new(name, Vec::new()))
                    .collect(),
            );
        }

        let first_new = self.resident.n_rows();
        for row in rows {
            for (c, field) in row.iter().enumerate() {
                self.resident
                    .column_mut(c)
                    .expect("row width matches header")
                    .values_mut()
                    .push(CellValue::parse(field));
            }
        }
        self.n_rows += rows.len();

        // Clean the whole window (resumes the prior chunk's session through
        // the cache's snapshot layer), then emit only the new rows.
        let report = self.engine.clean_table(&self.resident);
        let table_report = report.table_report();
        let repaired = Engine::apply(&self.resident, &table_report);
        let mut csv = String::new();
        io::append_csv_rows(&mut csv, &repaired, first_new..repaired.n_rows());

        let mut repairs: Vec<StreamRepair> = Vec::new();
        for col_report in &table_report.columns {
            for repair in &col_report.repairs {
                if repair.row >= first_new {
                    repairs.push(StreamRepair {
                        col: col_report.col,
                        row: self.resident_start + repair.row,
                        original: repair.original.clone(),
                        repaired: repair.repaired.clone(),
                    });
                }
            }
        }
        repairs.sort_by_key(|r| (r.col, r.row));
        self.n_repairs += repairs.len();

        let elapsed = started.elapsed();
        let registry = self.engine.metrics();
        if registry.enabled() {
            registry.add_counter("stream.chunks", 1);
            registry.add_counter("stream.rows", rows.len() as u64);
            registry.add_counter("stream.repairs", repairs.len() as u64);
            if compacted {
                registry.add_counter("stream.compactions", 1);
            }
            registry.set_gauge("stream.window_resident_rows", self.resident.n_rows() as f64);
            let secs = elapsed.as_secs_f64();
            if secs > 0.0 {
                registry.set_gauge("stream.chunk_rows_per_s", rows.len() as f64 / secs);
            }
            registry.observe("stream.chunk_latency", elapsed);
        }

        ChunkOutcome {
            first_row: self.resident_start + first_new,
            n_rows: rows.len(),
            csv,
            repairs,
            report,
            compacted,
            elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stationary quarterly stream: every cycle repeats the same distinct
    /// values, one of them malformed (`Q32001` → `Q3-2001`).
    fn cycle() -> Vec<Vec<String>> {
        ["Q4-2002", "Q3-2002", "Q1-2001", "Q2-2002", "Q32001"]
            .iter()
            .map(|v| vec![v.to_string()])
            .collect()
    }

    fn header() -> Vec<String> {
        vec!["Quarter".to_string()]
    }

    #[test]
    fn streams_match_batch_on_stationary_input() {
        let mut cleaner = StreamCleaner::new(&header(), StreamConfig::default());
        let mut streamed = cleaner.csv_header();
        let mut all_rows = Vec::new();
        for _ in 0..3 {
            let chunk = cycle();
            all_rows.extend(chunk.clone());
            let out = cleaner.push_rows(&chunk);
            assert_eq!(out.repairs.len(), 1, "one bad value per cycle");
            assert_eq!(out.repairs[0].repaired, "Q3-2001");
            streamed.push_str(&out.csv);
        }

        // Batch-clean the identical finite input in one call.
        let table = io::rows_to_table(&header(), &all_rows);
        let engine = Engine::new();
        let report = engine.clean_table(&table);
        let batch = io::to_csv(&Engine::apply(&table, &report.table_report()));
        assert_eq!(streamed, batch, "streaming must be byte-identical");
        assert_eq!(cleaner.n_rows(), 15);
        assert_eq!(cleaner.n_repairs(), 3);
    }

    #[test]
    fn later_chunks_resume_prior_sessions() {
        let mut cleaner = StreamCleaner::new(&header(), StreamConfig::default());
        cleaner.push_rows(&cycle());
        let out = cleaner.push_rows(&cycle());
        assert_eq!(out.report.session.session_extensions, 1);
        assert_eq!(out.report.session.rows_appended, 5);
        assert!(cleaner.engine().cache_stats().unwrap().session_resumes >= 1);
    }

    #[test]
    fn window_compaction_bounds_residency_and_keeps_output() {
        let cfg = StreamConfig {
            workers: 1,
            window_rows: 10,
            ..StreamConfig::default()
        };
        let mut windowed = StreamCleaner::new(&header(), cfg);
        let mut unbounded = StreamCleaner::new(&header(), StreamConfig::default());
        let mut a = windowed.csv_header();
        let mut b = unbounded.csv_header();
        for _ in 0..5 {
            let chunk = cycle();
            a.push_str(&windowed.push_rows(&chunk).csv);
            b.push_str(&unbounded.push_rows(&chunk).csv);
        }
        assert_eq!(a, b, "compaction must not change emitted rows");
        assert!(windowed.compactions() >= 2);
        assert!(windowed.resident.n_rows() <= 10 + 5);
        // Absolute row indices survive compaction.
        let chunk = cycle();
        let out = windowed.push_rows(&chunk);
        assert_eq!(out.first_row, 25);
        assert_eq!(out.repairs[0].row, 29);
    }

    #[test]
    fn compaction_never_resumes_a_stale_snapshot() {
        let cfg = StreamConfig {
            workers: 1,
            window_rows: 10,
            ..StreamConfig::default()
        };
        let mut cleaner = StreamCleaner::new(&header(), cfg);
        let resumes = |c: &StreamCleaner| c.engine().cache_stats().unwrap().session_resumes;

        // Chunk 1: cold start, nothing to resume.
        assert!(!cleaner.push_rows(&cycle()).compacted);
        assert_eq!(resumes(&cleaner), 0);
        // Chunk 2: the 5-row snapshot is a prefix of the 10-row window —
        // resumed.
        assert!(!cleaner.push_rows(&cycle()).compacted);
        assert_eq!(resumes(&cleaner), 1);
        // Chunk 3: the window compacts first, so the cached snapshot (of
        // the old 10-row window) no longer prefix-matches the fresh 5-row
        // window. It must be rejected, not resumed.
        assert!(cleaner.push_rows(&cycle()).compacted);
        assert_eq!(resumes(&cleaner), 1, "stale snapshot must not resume");
        // Chunk 4: the post-compaction snapshot is current again.
        assert!(!cleaner.push_rows(&cycle()).compacted);
        assert_eq!(resumes(&cleaner), 2);

        // The reject itself is the `SessionResumeError` path: a snapshot of
        // the pre-compaction window cannot re-attach to the smaller
        // post-compaction one.
        let dv = DataVinci::new();
        let big = io::rows_to_table(&header(), &[cycle(), cycle()].concat());
        let snapshot = dv.session(&big).into_snapshot();
        let small = io::rows_to_table(&header(), &cycle());
        match datavinci_core::AnalysisSession::resume(snapshot, &small) {
            Err(datavinci_core::SessionResumeError::TableShrunk { had, got }) => {
                assert_eq!((had, got), (10, 5));
            }
            other => panic!("expected TableShrunk, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn windowed_cache_stays_bounded_over_a_long_stream() {
        let cfg = StreamConfig {
            workers: 1,
            window_rows: 10,
            ..StreamConfig::default()
        };
        let mut cleaner = StreamCleaner::new(&header(), cfg);
        // One column: capacity is (4 * 1).max(16) = 16. Every chunk mints
        // new column fingerprints, so without the bound (and LRU eviction)
        // the cache would grow with the stream.
        for i in 0..30 {
            cleaner.push_rows(&cycle());
            assert!(
                cleaner.engine().cache_len() <= 16,
                "cache grew past capacity at chunk {i}: {}",
                cleaner.engine().cache_len()
            );
        }
        assert!(cleaner.compactions() >= 14);
        assert_eq!(cleaner.n_repairs(), 30);
    }

    #[test]
    fn empty_chunk_is_a_no_op() {
        let mut cleaner = StreamCleaner::new(&header(), StreamConfig::default());
        let out = cleaner.push_rows(&[]);
        assert_eq!(out.n_rows, 0);
        assert!(out.csv.is_empty());
        assert!(out.repairs.is_empty());
    }
}
