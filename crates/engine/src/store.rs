//! The durable artifact store: warm starts across process restarts.
//!
//! A [`ProfileCache`] makes re-cleans cheap *within* one process; this
//! module makes them cheap *across* processes by persisting the cache's
//! fingerprint-keyed artifacts — learned column analyses and reports,
//! table feature sets, and session snapshot skeletons — to disk in a
//! versioned, checksummed binary format (the `datavinci_core::persist`
//! codec wrapped in framed records).
//!
//! Layout under the store directory:
//!
//! ```text
//! DIR/FORMAT                          "datavinci-store/v1\n" version marker
//! DIR/tenants/<tenant>/artifacts.dvs  one framed blob per tenant
//! ```
//!
//! Tenants are hard namespaces: artifacts never cross tenant blobs, so two
//! tenants cleaning byte-identical tables (equal fingerprints) still keep
//! disjoint state. Every record carries its own checksum (the stable
//! [`datavinci_table::Fingerprinter`] over the payload); a truncated or
//! bit-flipped record is *rejected, not trusted*: loading salvages every
//! record before the first bad one and reports the rest as skipped — the
//! engine simply rebuilds those entries cold. Nothing in this module
//! panics on hostile bytes.
//!
//! Flushes are atomic (write to a temp file, then rename over the blob)
//! and size-budgeted: records are written least-recently-used first, and
//! when the serialized blob would exceed the budget the LRU head is
//! dropped until it fits — the disk inherits the cache's recency policy.

use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::cache::{Artifact, CachedColumn, ProfileCache};
use datavinci_core::{persist, MaskCache};
use datavinci_table::Fingerprinter;

/// Contents of the store directory's `FORMAT` marker. Bumped on any
/// incompatible layout change; a store written under a different marker is
/// refused (never silently reinterpreted).
pub const FORMAT_MARKER: &str = "datavinci-store/v1\n";

/// Magic prefix of a tenant blob.
const BLOB_MAGIC: &[u8; 4] = b"DVST";

/// Version number embedded in each tenant blob after the magic.
const BLOB_VERSION: u32 = 1;

/// Record kind tags.
const KIND_COLUMN: u8 = 1;
const KIND_SESSION: u8 = 2;
const KIND_SNAPSHOT: u8 = 3;

/// Default on-disk size budget per tenant blob: 64 MiB.
pub const DEFAULT_STORE_BUDGET: u64 = 64 * 1024 * 1024;

/// Why a store could not be opened, loaded, or flushed. Every variant
/// carries the path it happened at, so the CLI can print a positioned
/// error and exit non-zero instead of silently starting cold.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (unwritable directory, permission, disk full).
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// What was being attempted ("create", "read", "write", "rename").
        op: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The store was written by an incompatible format version.
    VersionMismatch {
        /// The marker or blob file that disagreed.
        path: PathBuf,
        /// What the file claims (trimmed), or a description of the defect.
        found: String,
        /// What this build writes.
        expected: String,
    },
    /// Tenant names become directory names, so they are restricted to
    /// `[A-Za-z0-9._-]` (and must be non-empty, not `.` or `..`).
    InvalidTenant {
        /// The offending name.
        tenant: String,
    },
    /// The engine was built with `cache: false`; there is nothing to
    /// persist or warm.
    CacheDisabled,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, op, source } => {
                write!(f, "store: cannot {op} {}: {source}", path.display())
            }
            StoreError::VersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "store: {}: format {found:?} is not {expected:?} \
                 (written by an incompatible version; move or delete the store directory)",
                path.display()
            ),
            StoreError::InvalidTenant { tenant } => write!(
                f,
                "store: invalid tenant name {tenant:?} \
                 (allowed: letters, digits, '.', '_', '-')"
            ),
            StoreError::CacheDisabled => {
                write!(f, "store: engine cache is disabled; nothing to persist")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// What a [`ArtifactStore::load_into`] recovered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Report-tier entries (analysis + report) restored.
    pub columns: usize,
    /// Session-tier feature sets restored.
    pub sessions: usize,
    /// Snapshot skeletons restored.
    pub snapshots: usize,
    /// Records rejected (bad checksum, truncation, undecodable payload).
    /// Rejection stops the scan: everything after the first bad byte is
    /// unrecoverable by construction and counted here as one.
    pub skipped: usize,
    /// Bytes of blob consumed by restored records.
    pub bytes: u64,
}

/// What a [`ArtifactStore::flush_from`] wrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Records written.
    pub records: usize,
    /// Blob size on disk, in bytes.
    pub bytes: u64,
    /// Least-recently-used records dropped to meet the size budget.
    pub evicted: usize,
}

/// A handle on one tenant's slice of a durable artifact store directory.
pub struct ArtifactStore {
    blob_path: PathBuf,
    budget: u64,
}

/// Is `tenant` safe to use as a directory name?
fn tenant_ok(tenant: &str) -> bool {
    !tenant.is_empty()
        && tenant != "."
        && tenant != ".."
        && tenant
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

fn io_err(path: &Path, op: &'static str, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        op,
        source,
    }
}

impl ArtifactStore {
    /// Opens (creating if absent) the store at `dir` for `tenant`, with the
    /// default size budget.
    ///
    /// Creation writes the `FORMAT` marker; opening verifies it. A
    /// directory that exists, is non-empty, and carries no (or a foreign)
    /// marker is refused with [`StoreError::VersionMismatch`] — it is
    /// either from an incompatible build or not a store at all, and
    /// overwriting it would destroy data this build cannot read.
    pub fn open(dir: impl AsRef<Path>, tenant: &str) -> Result<ArtifactStore, StoreError> {
        ArtifactStore::open_with_budget(dir, tenant, DEFAULT_STORE_BUDGET)
    }

    /// [`ArtifactStore::open`] with an explicit per-tenant size budget in
    /// bytes (min 4 KiB; flushes drop LRU records beyond it).
    pub fn open_with_budget(
        dir: impl AsRef<Path>,
        tenant: &str,
        budget: u64,
    ) -> Result<ArtifactStore, StoreError> {
        let dir = dir.as_ref();
        if !tenant_ok(tenant) {
            return Err(StoreError::InvalidTenant {
                tenant: tenant.to_string(),
            });
        }
        let marker = dir.join("FORMAT");
        match std::fs::read_to_string(&marker) {
            Ok(found) => {
                if found != FORMAT_MARKER {
                    return Err(StoreError::VersionMismatch {
                        path: marker,
                        found: found.trim_end().to_string(),
                        expected: FORMAT_MARKER.trim_end().to_string(),
                    });
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let occupied = std::fs::read_dir(dir)
                    .map(|mut entries| entries.next().is_some())
                    .unwrap_or(false);
                if occupied {
                    return Err(StoreError::VersionMismatch {
                        path: marker,
                        found: "missing marker in non-empty directory".to_string(),
                        expected: FORMAT_MARKER.trim_end().to_string(),
                    });
                }
                std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "create", e))?;
                std::fs::write(&marker, FORMAT_MARKER).map_err(|e| io_err(&marker, "write", e))?;
            }
            Err(e) => return Err(io_err(&marker, "read", e)),
        }
        let tenant_dir = dir.join("tenants").join(tenant);
        std::fs::create_dir_all(&tenant_dir).map_err(|e| io_err(&tenant_dir, "create", e))?;
        Ok(ArtifactStore {
            blob_path: tenant_dir.join("artifacts.dvs"),
            budget: budget.max(4096),
        })
    }

    /// The tenant blob this handle reads and writes.
    pub fn path(&self) -> &Path {
        &self.blob_path
    }

    /// The per-tenant size budget in bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Restores every intact record of the tenant blob into `cache`.
    /// `mask_cache` is the owning system's shared semantic memo — restored
    /// snapshots memoize into it exactly as live sessions do.
    ///
    /// A missing blob is an empty store (fresh tenant), not an error.
    /// Corruption is tolerated: the scan stops at the first bad record and
    /// reports it in [`LoadStats::skipped`]; whatever loaded before it is
    /// kept. Only a foreign blob header (wrong magic/version) is an error —
    /// that is a format problem, not damage.
    pub fn load_into(
        &self,
        cache: &ProfileCache,
        mask_cache: Arc<MaskCache>,
    ) -> Result<LoadStats, StoreError> {
        let blob = match std::fs::read(&self.blob_path) {
            Ok(blob) => blob,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LoadStats::default()),
            Err(e) => return Err(io_err(&self.blob_path, "read", e)),
        };
        if blob.len() < 8 || &blob[..4] != BLOB_MAGIC {
            return Err(StoreError::VersionMismatch {
                path: self.blob_path.clone(),
                found: "not a datavinci artifact blob".to_string(),
                expected: format!("DVST v{BLOB_VERSION}"),
            });
        }
        let version = u32::from_le_bytes(blob[4..8].try_into().expect("4 bytes"));
        if version != BLOB_VERSION {
            return Err(StoreError::VersionMismatch {
                path: self.blob_path.clone(),
                found: format!("DVST v{version}"),
                expected: format!("DVST v{BLOB_VERSION}"),
            });
        }

        let mut stats = LoadStats::default();
        let mut at = 8usize;
        while at < blob.len() {
            let Some((kind, payload, next)) = read_record(&blob, at) else {
                // Truncated or checksum-failed: everything from here on is
                // unframeable. Keep what loaded, rebuild the rest cold.
                stats.skipped += 1;
                break;
            };
            let restored = match (kind, read_u64(payload, 0)) {
                (KIND_COLUMN, _) => match decode_column_record(payload) {
                    Some(entry) => {
                        cache.insert_entry(Arc::new(entry));
                        stats.columns += 1;
                        true
                    }
                    None => false,
                },
                (KIND_SESSION, Some(key)) => {
                    let mut r = persist::Reader::new(&payload[8..]);
                    match persist::decode_feature_set(&mut r) {
                        Ok(features) if r.is_empty() => {
                            cache.insert_session(key, Arc::new(features));
                            stats.sessions += 1;
                            true
                        }
                        _ => false,
                    }
                }
                (KIND_SNAPSHOT, Some(key)) => {
                    let mut r = persist::Reader::new(&payload[8..]);
                    match persist::decode_snapshot(&mut r, Arc::clone(&mask_cache)) {
                        Ok(snapshot) if r.is_empty() => {
                            cache.insert_snapshot(key, snapshot);
                            stats.snapshots += 1;
                            true
                        }
                        _ => false,
                    }
                }
                _ => false,
            };
            if !restored {
                stats.skipped += 1;
                break;
            }
            stats.bytes += (next - at) as u64;
            at = next;
        }
        Ok(stats)
    }

    /// Serializes the cache's current contents and atomically replaces the
    /// tenant blob (temp file + rename; a crash mid-flush leaves the prior
    /// blob intact). Records go out least-recently-used first and the LRU
    /// head is dropped while the blob would exceed the budget, so the most
    /// recently useful artifacts always survive to the next process.
    pub fn flush_from(&self, cache: &ProfileCache) -> Result<FlushStats, StoreError> {
        // Serialize outside any file I/O (and outside this fn's error
        // paths): each record framed as kind + len + payload + checksum.
        let mut records: Vec<Vec<u8>> = Vec::new();
        cache.export(|artifact| {
            let mut payload = Vec::new();
            let kind = match artifact {
                Artifact::Column(entry) => {
                    encode_column_record(entry, &mut payload);
                    KIND_COLUMN
                }
                Artifact::Session {
                    table_fingerprint,
                    features,
                } => {
                    payload.extend_from_slice(&table_fingerprint.to_le_bytes());
                    persist::encode_feature_set(features, &mut payload);
                    KIND_SESSION
                }
                Artifact::Snapshot {
                    header_key,
                    snapshot,
                } => {
                    payload.extend_from_slice(&header_key.to_le_bytes());
                    persist::encode_snapshot(snapshot, &mut payload);
                    KIND_SNAPSHOT
                }
            };
            let mut record = Vec::with_capacity(payload.len() + 21);
            record.push(kind);
            record.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            record.extend_from_slice(&payload);
            record.extend_from_slice(&checksum(kind, &payload).to_le_bytes());
            records.push(record);
        });

        let mut total: u64 = 8 + records.iter().map(|r| r.len() as u64).sum::<u64>();
        let mut evicted = 0;
        let mut start = 0;
        while total > self.budget && start < records.len() {
            total -= records[start].len() as u64;
            start += 1;
            evicted += 1;
        }
        let survivors = &records[start..];

        let tmp_path = self.blob_path.with_extension("dvs.tmp");
        let mut tmp =
            std::fs::File::create(&tmp_path).map_err(|e| io_err(&tmp_path, "create", e))?;
        let write = |tmp: &mut std::fs::File, bytes: &[u8]| {
            tmp.write_all(bytes)
                .map_err(|e| io_err(&tmp_path, "write", e))
        };
        write(&mut tmp, BLOB_MAGIC)?;
        write(&mut tmp, &BLOB_VERSION.to_le_bytes())?;
        for record in survivors {
            write(&mut tmp, record)?;
        }
        tmp.sync_all().map_err(|e| io_err(&tmp_path, "write", e))?;
        drop(tmp);
        std::fs::rename(&tmp_path, &self.blob_path)
            .map_err(|e| io_err(&self.blob_path, "rename", e))?;
        Ok(FlushStats {
            records: survivors.len(),
            bytes: total,
            evicted,
        })
    }
}

/// The record checksum: the toolchain-stable content fingerprint over the
/// kind tag and payload (covering the tag means a flipped kind byte cannot
/// reinterpret a valid payload as another record type), so a blob written
/// by one build verifies in any other.
fn checksum(kind: u8, payload: &[u8]) -> u64 {
    let mut f = Fingerprinter::new();
    f.add_bytes(&[kind]);
    f.add_bytes(payload);
    f.finish()
}

/// Frames one record out of `blob` at `at`: returns `(kind, payload,
/// next_offset)` iff the record is complete and its checksum verifies.
fn read_record(blob: &[u8], at: usize) -> Option<(u8, &[u8], usize)> {
    let kind = *blob.get(at)?;
    let len = read_u64(blob, at + 1)? as usize;
    let payload_at = at + 9;
    // `checked_add` keeps a flipped length byte from wrapping past the end.
    let checksum_at = payload_at.checked_add(len)?;
    let next = checksum_at.checked_add(8)?;
    if next > blob.len() {
        return None;
    }
    let payload = &blob[payload_at..checksum_at];
    if read_u64(blob, checksum_at)? != checksum(kind, payload) {
        return None;
    }
    Some((kind, payload, next))
}

fn read_u64(buf: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(
        buf.get(at..at + 8)?.try_into().expect("8 bytes"),
    ))
}

/// Column-record payload: the entry's identity fields followed by its
/// analysis and report in the `persist` codec.
fn encode_column_record(entry: &CachedColumn, out: &mut Vec<u8>) {
    out.extend_from_slice(&(entry.name.len() as u32).to_le_bytes());
    out.extend_from_slice(entry.name.as_bytes());
    out.extend_from_slice(&entry.fingerprint.to_le_bytes());
    out.extend_from_slice(&entry.table_fingerprint.to_le_bytes());
    out.extend_from_slice(&(entry.col as u64).to_le_bytes());
    out.extend_from_slice(&(entry.n_rows as u64).to_le_bytes());
    persist::encode_column_analysis(&entry.analysis, &mut *out);
    persist::encode_column_report(&entry.report, &mut *out);
}

fn decode_column_record(payload: &[u8]) -> Option<CachedColumn> {
    let name_len = u32::from_le_bytes(payload.get(..4)?.try_into().expect("4 bytes")) as usize;
    let name_end = 4usize
        .checked_add(name_len)
        .filter(|&e| e <= payload.len())?;
    let name = std::str::from_utf8(&payload[4..name_end]).ok()?.to_string();
    let fixed = payload.get(name_end..name_end + 32)?;
    let field = |i: usize| u64::from_le_bytes(fixed[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
    let mut r = persist::Reader::new(&payload[name_end + 32..]);
    let analysis = persist::decode_column_analysis(&mut r).ok()?;
    let report = persist::decode_column_report(&mut r).ok()?;
    if !r.is_empty() {
        return None;
    }
    Some(CachedColumn {
        name,
        fingerprint: field(0),
        table_fingerprint: field(1),
        col: field(2) as usize,
        n_rows: field(3) as usize,
        analysis: Arc::new(analysis),
        report,
    })
}
