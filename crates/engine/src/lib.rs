//! `datavinci-engine`: a parallel, cache-aware batch cleaning engine.
//!
//! DataVinci's pipeline (paper Figure 2) is column-wise: abstraction,
//! pattern learning, detection, and repair all happen per column. That makes
//! table cleaning embarrassingly parallel *and* highly cacheable — this
//! crate supplies the production-shaped wrapper the core pipeline
//! deliberately leaves out:
//!
//! * [`WorkerPool`] — a std-only scoped-thread pool; one task per
//!   `(table, column)` pair, dynamic load balancing, configurable width.
//! * [`ProfileCache`] — learned-artifact reuse keyed by 64-bit rolling
//!   content fingerprints ([`datavinci_table::Column::fingerprint`]): whole
//!   reports for unchanged tables, analyses for unchanged columns, learned
//!   profiles for append-only growth.
//! * [`Engine`] — drives [`datavinci_core::DataVinci`] over single tables
//!   ([`Engine::clean_table`]) or job queues ([`Engine::clean_batch`]),
//!   producing [`EngineReport`]s with per-column timing and cache
//!   telemetry. Cold and unchanged-content cleans are byte-identical to
//!   the sequential pipeline; append-only reuse re-scores prior patterns
//!   and falls back to full profiling when appended rows don't fit them.
//! * [`json`] — a minimal JSON renderer for reports (the vendored serde is
//!   a marker shim), shared with the `datavinci-clean` CLI binary.
//!
//! ```
//! use datavinci_engine::{Engine, EngineConfig};
//! use datavinci_table::{Column, Table};
//!
//! let table = Table::new(vec![
//!     Column::from_texts("Quarter", &["Q4-2002", "Q3-2002", "Q1-2001", "Q2-2002", "Q32001"]),
//! ]);
//! let engine = Engine::with_config(EngineConfig { workers: 4, cache: true, ..EngineConfig::default() });
//! let report = engine.clean_table(&table);
//! assert_eq!(report.columns[0].report.repairs[0].repaired, "Q3-2001");
//! // A warm re-clean of unchanged content is served from the cache.
//! let warm = engine.clean_table(&table);
//! assert_eq!(warm.cache_hits(), 1);
//! ```

pub mod cache;
mod engine;
pub mod json;
pub mod pool;
pub mod report;
pub mod serve;
pub mod store;
pub mod stream;

pub use cache::{
    Artifact, CacheLookup, CacheStats, CachedColumn, ProfileCache, DEFAULT_CACHE_CAPACITY,
};
pub use engine::{Engine, EngineConfig};
pub use pool::WorkerPool;
pub use report::{
    cache_stats_into, cache_stats_json, histogram_json, metrics_frame_json, session_stats_into,
    session_stats_json, span_node_json, telemetry_json, BatchReport, CacheOutcome, ColumnOutcome,
    EngineReport,
};
pub use serve::{Server, ServerConfig};
pub use store::{
    ArtifactStore, FlushStats, LoadStats, StoreError, DEFAULT_STORE_BUDGET, FORMAT_MARKER,
};
pub use stream::{ChunkOutcome, StreamCleaner, StreamConfig, StreamRepair};
