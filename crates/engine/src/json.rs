//! A minimal JSON value, renderer, and parser.
//!
//! The workspace's vendored `serde` is a derive-only marker shim (no
//! serializer backend), so the engine renders its reports with this tiny
//! tree builder instead. Output is deterministic: object keys keep
//! insertion order, floats render with enough precision to round-trip.
//! [`Json::parse`] is the inverse, used by the `datavinci-serve` wire
//! protocol (newline-delimited JSON requests); it is bounds-checked,
//! depth-limited, and reports positioned errors instead of panicking.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A float (NaN/infinities render as `null` per JSON's grammar).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds/overwrites a field on an object (panics on non-objects:
    /// misusing the builder is a programming error).
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                fields.push((key.to_string(), value));
                self
            }
            _ => panic!("Json::field on a non-object"),
        }
    }

    /// Looks up a field on an object (None on non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is an integer (or an integral float).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => Some(*n as i64),
            _ => None,
        }
    }

    /// Parses one JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Renders with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.iter(), |out, item, ind| {
                item.write(out, ind)
            }),
            Json::Obj(fields) => {
                write_seq(out, indent, '{', '}', fields.iter(), |out, (k, v), ind| {
                    write_escaped(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    v.write(out, ind);
                })
            }
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, Option<usize>),
) {
    out.push(open);
    let n = items.len();
    let inner = indent.map(|i| i + 1);
    for (i, item) in items.enumerate() {
        if let Some(level) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
        write_item(out, item, inner);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(level) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
    }
    out.push(close);
}

/// Where and why a [`Json::parse`] call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What was expected or wrong.
    pub what: &'static str,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonParseError {}

/// Nesting deeper than this is rejected (protects the daemon's stack from
/// adversarial `[[[[…` requests).
const MAX_JSON_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonParseError {
        JsonParseError { at: self.pos, what }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonParseError> {
        if depth > MAX_JSON_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':', "expected ':' after object key")?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: require a low surrogate.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate")?;
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let scalar = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(scalar)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("unescaped control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self.peek().ok_or_else(|| self.err("unterminated \\u"))?;
            let digit = match d {
                b'0'..=b'9' => (d - b'0') as u32,
                b'a'..=b'f' => (d - b'a') as u32 + 10,
                b'A'..=b'F' => (d - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonParseError {
                at: start,
                what: "invalid number",
            })
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\n").render(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj()
            .field("name", Json::str("col"))
            .field("rows", Json::Arr(vec![Json::Int(1), Json::Int(2)]));
        assert_eq!(v.render(), r#"{"name":"col","rows":[1,2]}"#);
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let v = Json::obj().field("a", Json::Arr(vec![Json::Int(1)]));
        assert_eq!(v.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
        assert_eq!(Json::obj().render_pretty(), "{}\n");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn parse_roundtrips_rendered_documents() {
        let v = Json::obj()
            .field("op", Json::str("clean"))
            .field("rows", Json::Arr(vec![Json::Int(1), Json::Int(-2)]))
            .field("ratio", Json::Num(2.5))
            .field("ok", Json::Bool(true))
            .field("none", Json::Null)
            .field("text", Json::str("a\"b\\c\nd\té \u{1F600}"));
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            Json::str("Aé\u{1F600}")
        );
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::obj());
        assert_eq!(Json::parse(" 12 ").unwrap(), Json::Int(12));
        assert_eq!(Json::parse("-0.5").unwrap(), Json::Num(-0.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "nul",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1 2]",
            "1x",
            "\"\\q\"",
            "\"\\ud800\"",
            "\"\u{1}\"",
            "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Deep nesting is bounded, not a stack overflow.
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Json::parse(r#"{"op":"clean","n":3}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("clean"));
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(3));
        assert!(v.get("missing").is_none());
        assert!(Json::Int(1).get("x").is_none());
    }
}
