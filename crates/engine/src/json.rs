//! A minimal JSON value + renderer.
//!
//! The workspace's vendored `serde` is a derive-only marker shim (no
//! serializer backend), so the engine renders its reports with this tiny
//! tree builder instead. Output is deterministic: object keys keep
//! insertion order, floats render with enough precision to round-trip.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A float (NaN/infinities render as `null` per JSON's grammar).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds/overwrites a field on an object (panics on non-objects:
    /// misusing the builder is a programming error).
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                fields.push((key.to_string(), value));
                self
            }
            _ => panic!("Json::field on a non-object"),
        }
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Renders with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.iter(), |out, item, ind| {
                item.write(out, ind)
            }),
            Json::Obj(fields) => {
                write_seq(out, indent, '{', '}', fields.iter(), |out, (k, v), ind| {
                    write_escaped(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    v.write(out, ind);
                })
            }
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, Option<usize>),
) {
    out.push(open);
    let n = items.len();
    let inner = indent.map(|i| i + 1);
    for (i, item) in items.enumerate() {
        if let Some(level) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
        write_item(out, item, inner);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(level) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\n").render(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj()
            .field("name", Json::str("col"))
            .field("rows", Json::Arr(vec![Json::Int(1), Json::Int(2)]));
        assert_eq!(v.render(), r#"{"name":"col","rows":[1,2]}"#);
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let v = Json::obj().field("a", Json::Arr(vec![Json::Int(1)]));
        assert_eq!(v.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
        assert_eq!(Json::obj().render_pretty(), "{}\n");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }
}
