//! Engine reports: per-column cleaning outcomes with timing and cache
//! telemetry, aggregating the core pipeline's [`ColumnReport`]s.

use std::time::Duration;

use crate::cache::CacheStats;
use crate::json::Json;
use datavinci_core::{ColumnReport, SessionStats, TableReport};

/// How the cache served one column clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Caching disabled on this engine.
    Disabled,
    /// Nothing reusable: full analyze + repair.
    Miss,
    /// Column and table unchanged: cached report returned as-is.
    ReportHit,
    /// Column unchanged, table context changed: cached analysis, fresh
    /// repair.
    AnalysisHit,
    /// Append-only column growth: cached profile re-scored, fresh repair.
    AppendHit,
}

impl CacheOutcome {
    /// Did any cached layer get reused?
    pub fn is_hit(&self) -> bool {
        matches!(
            self,
            CacheOutcome::ReportHit | CacheOutcome::AnalysisHit | CacheOutcome::AppendHit
        )
    }

    /// Stable lowercase label (report/JSON rendering).
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Disabled => "disabled",
            CacheOutcome::Miss => "miss",
            CacheOutcome::ReportHit => "report_hit",
            CacheOutcome::AnalysisHit => "analysis_hit",
            CacheOutcome::AppendHit => "append_hit",
        }
    }
}

/// One column's cleaning outcome.
#[derive(Debug, Clone)]
pub struct ColumnOutcome {
    /// The core pipeline report (detections, repairs, patterns).
    pub report: ColumnReport,
    /// How the cache served this clean.
    pub cache: CacheOutcome,
    /// Time spent cleaning this column (on its worker thread).
    pub elapsed: Duration,
}

/// A whole-table engine report.
#[derive(Debug, Clone, Default)]
pub struct EngineReport {
    /// Per-column outcomes, in column order (cleaned columns only).
    pub columns: Vec<ColumnOutcome>,
    /// Summed per-column cleaning time (CPU-side; wall time lives on
    /// [`BatchReport::elapsed`]).
    pub elapsed: Duration,
    /// Reuse telemetry of the table's shared analysis session (tables with
    /// identical fingerprints in one batch share a session, and therefore
    /// a snapshot).
    pub session: SessionStats,
}

impl EngineReport {
    /// The plain core-pipeline view, for comparison with
    /// [`datavinci_core::DataVinci::clean_table`].
    pub fn table_report(&self) -> TableReport {
        TableReport {
            columns: self.columns.iter().map(|c| c.report.clone()).collect(),
        }
    }

    /// Total detections across columns.
    pub fn n_detections(&self) -> usize {
        self.columns.iter().map(|c| c.report.detections.len()).sum()
    }

    /// Total repair suggestions across columns.
    pub fn n_repairs(&self) -> usize {
        self.columns.iter().map(|c| c.report.repairs.len()).sum()
    }

    /// Columns served by any cached layer.
    pub fn cache_hits(&self) -> usize {
        self.columns.iter().filter(|c| c.cache.is_hit()).count()
    }
}

/// The canonical JSON rendering of session reuse telemetry (shared by the
/// CLI and the bench binaries).
pub fn session_stats_json(stats: &SessionStats) -> Json {
    Json::obj()
        .field(
            "feature_generations",
            Json::Int(stats.feature_generations as i64),
        )
        .field(
            "feature_rows_computed",
            Json::Int(stats.feature_rows_computed as i64),
        )
        .field("feature_row_hits", Json::Int(stats.feature_row_hits as i64))
        .field("pools_built", Json::Int(stats.pools_built as i64))
        .field("pools_reused", Json::Int(stats.pools_reused as i64))
        .field("table_rows", Json::Int(stats.table_rows as i64))
        .field("distinct_rows", Json::Int(stats.distinct_rows as i64))
        .field("plan_error_rows", Json::Int(stats.plan_error_rows as i64))
        .field("plan_groups", Json::Int(stats.plan_groups as i64))
        .field(
            "plan_sharing_factor",
            Json::Num(stats.plan_sharing_factor()),
        )
        .field(
            "column_types_memoized",
            Json::Int(stats.column_types_memoized as i64),
        )
        .field(
            "mask_cache_entries",
            Json::Int(stats.mask_cache_entries as i64),
        )
        .field("mask_cache_hits", Json::Int(stats.mask_cache_hits as i64))
        .field(
            "mask_cache_misses",
            Json::Int(stats.mask_cache_misses as i64),
        )
        .field(
            "session_extensions",
            Json::Int(stats.session_extensions as i64),
        )
        .field("rows_appended", Json::Int(stats.rows_appended as i64))
}

/// The outcome of one batch clean.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Per-table reports, in input order.
    pub tables: Vec<EngineReport>,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
    /// Worker threads used.
    pub workers: usize,
    /// Cache telemetry snapshot after the batch (cumulative for the
    /// engine's cache lifetime).
    pub cache: CacheStats,
}

impl BatchReport {
    /// Total detections across all tables.
    pub fn n_detections(&self) -> usize {
        self.tables.iter().map(EngineReport::n_detections).sum()
    }

    /// Total repair suggestions across all tables.
    pub fn n_repairs(&self) -> usize {
        self.tables.iter().map(EngineReport::n_repairs).sum()
    }

    /// Columns served by any cached layer, across all tables.
    pub fn cache_hits(&self) -> usize {
        self.tables.iter().map(EngineReport::cache_hits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_outcome_classification() {
        assert!(!CacheOutcome::Disabled.is_hit());
        assert!(!CacheOutcome::Miss.is_hit());
        assert!(CacheOutcome::ReportHit.is_hit());
        assert!(CacheOutcome::AnalysisHit.is_hit());
        assert!(CacheOutcome::AppendHit.is_hit());
        assert_eq!(CacheOutcome::ReportHit.label(), "report_hit");
    }

    #[test]
    fn empty_report_counts_are_zero() {
        let r = EngineReport::default();
        assert_eq!(r.n_detections(), 0);
        assert_eq!(r.n_repairs(), 0);
        assert_eq!(r.cache_hits(), 0);
        assert!(r.table_report().columns.is_empty());
    }
}
