//! Engine reports: per-column cleaning outcomes with timing and cache
//! telemetry, aggregating the core pipeline's [`ColumnReport`]s.

use std::time::Duration;

use crate::cache::CacheStats;
use crate::json::Json;
use datavinci_core::{ColumnReport, SessionStats, TableReport};
use datavinci_telemetry::{Histogram, MetricsFrame, SpanNode, TaskProfile};

/// How the cache served one column clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Caching disabled on this engine.
    Disabled,
    /// Nothing reusable: full analyze + repair.
    Miss,
    /// Column and table unchanged: cached report returned as-is.
    ReportHit,
    /// Column unchanged, table context changed: cached analysis, fresh
    /// repair.
    AnalysisHit,
    /// Append-only column growth: cached profile re-scored, fresh repair.
    AppendHit,
}

impl CacheOutcome {
    /// Did any cached layer get reused?
    pub fn is_hit(&self) -> bool {
        matches!(
            self,
            CacheOutcome::ReportHit | CacheOutcome::AnalysisHit | CacheOutcome::AppendHit
        )
    }

    /// Stable lowercase label (report/JSON rendering).
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Disabled => "disabled",
            CacheOutcome::Miss => "miss",
            CacheOutcome::ReportHit => "report_hit",
            CacheOutcome::AnalysisHit => "analysis_hit",
            CacheOutcome::AppendHit => "append_hit",
        }
    }

    /// The per-clean telemetry counter this outcome increments.
    pub fn metric(&self) -> &'static str {
        match self {
            CacheOutcome::Disabled => "engine.cache_outcome.disabled",
            CacheOutcome::Miss => "engine.cache_outcome.miss",
            CacheOutcome::ReportHit => "engine.cache_outcome.report_hit",
            CacheOutcome::AnalysisHit => "engine.cache_outcome.analysis_hit",
            CacheOutcome::AppendHit => "engine.cache_outcome.append_hit",
        }
    }
}

/// One column's cleaning outcome.
#[derive(Debug, Clone)]
pub struct ColumnOutcome {
    /// The core pipeline report (detections, repairs, patterns).
    pub report: ColumnReport,
    /// How the cache served this clean.
    pub cache: CacheOutcome,
    /// Time spent cleaning this column (on its worker thread).
    pub elapsed: Duration,
}

/// A whole-table engine report.
#[derive(Debug, Clone, Default)]
pub struct EngineReport {
    /// Per-column outcomes, in column order (cleaned columns only).
    pub columns: Vec<ColumnOutcome>,
    /// Summed per-column cleaning time (CPU-side; wall time lives on
    /// [`BatchReport::elapsed`]).
    pub elapsed: Duration,
    /// Reuse telemetry of the table's shared analysis session (tables with
    /// identical fingerprints in one batch share a session, and therefore
    /// a snapshot).
    pub session: SessionStats,
    /// Structured telemetry for this table's clean — the merged span tree
    /// and metrics of every per-column worker task plus table-level
    /// aggregates. `None` when the engine runs with telemetry off.
    pub telemetry: Option<TaskProfile>,
}

impl EngineReport {
    /// The plain core-pipeline view, for comparison with
    /// [`datavinci_core::DataVinci::clean_table`].
    pub fn table_report(&self) -> TableReport {
        TableReport {
            columns: self.columns.iter().map(|c| c.report.clone()).collect(),
        }
    }

    /// Total detections across columns.
    pub fn n_detections(&self) -> usize {
        self.columns.iter().map(|c| c.report.detections.len()).sum()
    }

    /// Total repair suggestions across columns.
    pub fn n_repairs(&self) -> usize {
        self.columns.iter().map(|c| c.report.repairs.len()).sum()
    }

    /// Columns served by any cached layer.
    pub fn cache_hits(&self) -> usize {
        self.columns.iter().filter(|c| c.cache.is_hit()).count()
    }

    /// The `n` slowest columns of this clean, by per-column elapsed time,
    /// slowest first (ties broken by column index for determinism) — makes
    /// one huge column serializing a batch visible before any scheduler
    /// work tries to fix it.
    pub fn slowest_columns(&self, n: usize) -> Vec<&ColumnOutcome> {
        let mut ranked: Vec<&ColumnOutcome> = self.columns.iter().collect();
        ranked.sort_by_key(|c| (std::cmp::Reverse(c.elapsed), c.report.col));
        ranked.truncate(n);
        ranked
    }
}

/// The canonical JSON rendering of session reuse telemetry (shared by the
/// CLI and the bench binaries).
pub fn session_stats_json(stats: &SessionStats) -> Json {
    Json::obj()
        .field(
            "feature_generations",
            Json::Int(stats.feature_generations as i64),
        )
        .field(
            "feature_rows_computed",
            Json::Int(stats.feature_rows_computed as i64),
        )
        .field("feature_row_hits", Json::Int(stats.feature_row_hits as i64))
        .field("pools_built", Json::Int(stats.pools_built as i64))
        .field("pools_reused", Json::Int(stats.pools_reused as i64))
        .field("table_rows", Json::Int(stats.table_rows as i64))
        .field("distinct_rows", Json::Int(stats.distinct_rows as i64))
        .field("plan_error_rows", Json::Int(stats.plan_error_rows as i64))
        .field("plan_groups", Json::Int(stats.plan_groups as i64))
        .field(
            "plan_sharing_factor",
            Json::Num(stats.plan_sharing_factor()),
        )
        .field(
            "column_types_memoized",
            Json::Int(stats.column_types_memoized as i64),
        )
        .field(
            "mask_cache_entries",
            Json::Int(stats.mask_cache_entries as i64),
        )
        .field("mask_cache_hits", Json::Int(stats.mask_cache_hits as i64))
        .field(
            "mask_cache_misses",
            Json::Int(stats.mask_cache_misses as i64),
        )
        .field(
            "session_extensions",
            Json::Int(stats.session_extensions as i64),
        )
        .field("rows_appended", Json::Int(stats.rows_appended as i64))
}

/// Mirrors [`SessionStats`] into the unified metrics schema: every integer
/// field becomes a `session.*` counter, the derived sharing factor a gauge.
///
/// This (plus [`cache_stats_into`]) is the canonical mapping the tentpole
/// unifies the old ad-hoc stat structs onto; [`session_stats_json`] and
/// [`cache_stats_json`] remain as deprecated aliases for the legacy report
/// sections.
pub fn session_stats_into(frame: &mut MetricsFrame, stats: &SessionStats) {
    frame.add_counter("session.feature_generations", stats.feature_generations);
    frame.add_counter("session.feature_rows_computed", stats.feature_rows_computed);
    frame.add_counter("session.feature_row_hits", stats.feature_row_hits);
    frame.add_counter("session.pools_built", stats.pools_built);
    frame.add_counter("session.pools_reused", stats.pools_reused);
    frame.add_counter("session.table_rows", stats.table_rows);
    frame.add_counter("session.distinct_rows", stats.distinct_rows);
    frame.add_counter("session.plan_error_rows", stats.plan_error_rows);
    frame.add_counter("session.plan_groups", stats.plan_groups);
    frame.add_counter("session.column_types_memoized", stats.column_types_memoized);
    frame.add_counter("session.mask_cache_entries", stats.mask_cache_entries);
    frame.add_counter("session.mask_cache_hits", stats.mask_cache_hits);
    frame.add_counter("session.mask_cache_misses", stats.mask_cache_misses);
    frame.add_counter("session.extensions", stats.session_extensions);
    frame.add_counter("session.rows_appended", stats.rows_appended);
    frame.set_gauge("session.plan_sharing_factor", stats.plan_sharing_factor());
}

/// Mirrors [`CacheStats`] into the unified metrics schema as cumulative
/// `engine.cache.*` counters (per-clean outcomes live under the distinct
/// `engine.cache_outcome.*` names — see [`CacheOutcome::metric`]).
pub fn cache_stats_into(frame: &mut MetricsFrame, stats: &CacheStats) {
    frame.set_counter("engine.cache.report_hits", stats.report_hits);
    frame.set_counter("engine.cache.analysis_hits", stats.analysis_hits);
    frame.set_counter("engine.cache.append_hits", stats.append_hits);
    frame.set_counter("engine.cache.append_fallbacks", stats.append_fallbacks);
    frame.set_counter("engine.cache.misses", stats.misses);
    frame.set_counter("engine.cache.session_hits", stats.session_hits);
    frame.set_counter("engine.cache.session_resumes", stats.session_resumes);
    frame.set_counter("engine.cache.evictions.report", stats.report_evictions);
    frame.set_counter("engine.cache.evictions.session", stats.session_evictions);
    frame.set_counter("engine.cache.evictions.snapshot", stats.snapshot_evictions);
    frame.set_gauge("engine.cache.bytes", stats.bytes as f64);
}

/// The legacy JSON rendering of cumulative cache statistics — a deprecated
/// alias of [`CacheStats::to_json`]; new consumers should read the
/// `engine.cache.*` counters from [`cache_stats_into`]'s schema instead.
pub fn cache_stats_json(stats: &CacheStats) -> Json {
    stats.to_json()
}

/// One span node as JSON: `{name, count, total_ns, children: [...]}`.
pub fn span_node_json(node: &SpanNode) -> Json {
    Json::obj()
        .field("name", Json::str(&node.name))
        .field("count", Json::Int(node.count as i64))
        .field("total_ns", Json::Int(node.total_ns as i64))
        .field(
            "children",
            Json::Arr(node.children.iter().map(span_node_json).collect()),
        )
}

/// One latency histogram as JSON summary statistics (count, sum, min, max,
/// mean and the p50/p90/p99 quantile upper bounds, all in nanoseconds).
pub fn histogram_json(hist: &Histogram) -> Json {
    let opt = |v: Option<u64>| v.map(|n| Json::Int(n as i64)).unwrap_or(Json::Null);
    Json::obj()
        .field("count", Json::Int(hist.count() as i64))
        .field("sum_ns", Json::Int(hist.sum_ns() as i64))
        .field("min_ns", opt(hist.min_ns()))
        .field("max_ns", opt(hist.max_ns()))
        .field("mean_ns", Json::Int(hist.mean_ns() as i64))
        .field("p50_ns", Json::Int(hist.quantile_ns(0.50) as i64))
        .field("p90_ns", Json::Int(hist.quantile_ns(0.90) as i64))
        .field("p99_ns", Json::Int(hist.quantile_ns(0.99) as i64))
}

/// A metrics frame as JSON: counter/gauge/histogram maps, keys sorted
/// (the frame's `BTreeMap`s make this deterministic by construction).
pub fn metrics_frame_json(frame: &MetricsFrame) -> Json {
    let mut counters = Json::obj();
    for (name, value) in &frame.counters {
        counters = counters.field(name, Json::Int(*value as i64));
    }
    let mut gauges = Json::obj();
    for (name, value) in &frame.gauges {
        gauges = gauges.field(name, Json::Num(*value));
    }
    let mut histograms = Json::obj();
    for (name, hist) in &frame.histograms {
        histograms = histograms.field(name, histogram_json(hist));
    }
    Json::obj()
        .field("counters", counters)
        .field("gauges", gauges)
        .field("histograms", histograms)
}

/// A full task profile (span tree + metrics frame) as JSON, wrapped in a
/// versioned envelope so downstream consumers can detect schema drift.
pub fn telemetry_json(profile: &TaskProfile) -> Json {
    Json::obj()
        .field("schema", Json::str("datavinci.telemetry/v1"))
        .field(
            "spans",
            Json::Arr(profile.spans.iter().map(span_node_json).collect()),
        )
        .field("metrics", metrics_frame_json(&profile.metrics))
}

/// The outcome of one batch clean.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Per-table reports, in input order.
    pub tables: Vec<EngineReport>,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
    /// Worker threads used.
    pub workers: usize,
    /// Cache telemetry snapshot after the batch (cumulative for the
    /// engine's cache lifetime).
    pub cache: CacheStats,
    /// The whole batch's span tree and metrics (worker-task profiles
    /// grafted under the batch root, distinct-session and cache aggregates
    /// merged in). `None` when telemetry is off.
    pub telemetry: Option<TaskProfile>,
}

impl BatchReport {
    /// Total detections across all tables.
    pub fn n_detections(&self) -> usize {
        self.tables.iter().map(EngineReport::n_detections).sum()
    }

    /// Total repair suggestions across all tables.
    pub fn n_repairs(&self) -> usize {
        self.tables.iter().map(EngineReport::n_repairs).sum()
    }

    /// Columns served by any cached layer, across all tables.
    pub fn cache_hits(&self) -> usize {
        self.tables.iter().map(EngineReport::cache_hits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_outcome_classification() {
        assert!(!CacheOutcome::Disabled.is_hit());
        assert!(!CacheOutcome::Miss.is_hit());
        assert!(CacheOutcome::ReportHit.is_hit());
        assert!(CacheOutcome::AnalysisHit.is_hit());
        assert!(CacheOutcome::AppendHit.is_hit());
        assert_eq!(CacheOutcome::ReportHit.label(), "report_hit");
    }

    #[test]
    fn empty_report_counts_are_zero() {
        let r = EngineReport::default();
        assert_eq!(r.n_detections(), 0);
        assert_eq!(r.n_repairs(), 0);
        assert_eq!(r.cache_hits(), 0);
        assert!(r.table_report().columns.is_empty());
    }
}
