//! `datavinci-serve`: the cleaning engine as a long-lived daemon.
//!
//! Warm caches die with the process; the service mode keeps the process
//! alive. One [`Server`] owns one [`Engine`] per tenant (tenants are hard
//! isolation: equal fingerprints in different tenants never share
//! artifacts) and serves concurrent clients over a Unix or TCP socket —
//! thread-per-connection, no async runtime, std only.
//!
//! The wire protocol is newline-delimited JSON: one request object per
//! line, one response object per line, connection held open for any
//! number of requests. Operations:
//!
//! ```text
//! {"op":"ping"}                                   → {"ok":true,"pong":true}
//! {"op":"clean","csv":"...","tenant":"t"}         → {"ok":true,"csv":"...",...}
//! {"op":"stats"}                                  → {"ok":true,"metrics":{...},...}
//! {"op":"flush"}                                  → {"ok":true,"flushed":N}
//! {"op":"shutdown"}                               → {"ok":true}
//! ```
//!
//! Every failure is a positioned `{"ok":false,"error":"..."}` response —
//! a malformed request never kills the connection, let alone the daemon.
//!
//! Cleaning output is byte-identical to the batch CLI: a `clean` response's
//! `csv` field is exactly what `datavinci-clean` would have written for the
//! same input, so clients can A/B the two transports. When the server is
//! configured with a store directory, each tenant's engine warms from its
//! store slice at first touch and flushes back after every clean.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;
use crate::store::{ArtifactStore, StoreError};
use crate::{Engine, EngineConfig, DEFAULT_CACHE_CAPACITY};
use datavinci_core::{DataVinci, DataVinciConfig, RepairStrategy, SemanticMode};
use datavinci_table::io;
use datavinci_telemetry::MetricsFrame;

/// The tenant used when a request names none.
pub const DEFAULT_TENANT: &str = "default";

/// Server configuration (engine shape shared by every tenant).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads per clean; `0` means one per hardware thread.
    pub workers: usize,
    /// Per-tenant cache capacity (entries per tier).
    pub cache_capacity: usize,
    /// Durable store directory; `None` serves from memory only.
    pub store_dir: Option<PathBuf>,
    /// Per-tenant on-disk size budget in bytes.
    pub store_budget: u64,
    /// Semantic handling mode for every tenant's system.
    pub semantics: SemanticMode,
    /// Repair strategy for every tenant's system.
    pub strategy: RepairStrategy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            store_dir: None,
            store_budget: crate::store::DEFAULT_STORE_BUDGET,
            semantics: SemanticMode::Full,
            strategy: RepairStrategy::Planner,
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// One live client connection's transport.
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }
}

/// Shared server state: tenant engines, request telemetry, shutdown flag.
struct State {
    cfg: ServerConfig,
    /// One engine per tenant, created at first touch and kept for the
    /// server's lifetime (the whole point: caches that outlive requests).
    engines: Mutex<HashMap<String, Arc<Engine>>>,
    /// Request-level telemetry in the `datavinci-telemetry` schema
    /// (`serve.*` counters and latency histograms; engine-level cache and
    /// stage metrics live on each tenant's engine registry).
    metrics: Mutex<MetricsFrame>,
    shutting_down: AtomicBool,
    connections: AtomicU64,
}

impl State {
    /// The engine serving `tenant`, created (and store-warmed) on first
    /// touch.
    fn engine_for(&self, tenant: &str) -> Result<Arc<Engine>, String> {
        let mut engines = self.engines.lock().expect("engines poisoned");
        if let Some(engine) = engines.get(tenant) {
            return Ok(Arc::clone(engine));
        }
        let dv = DataVinci::with_config(DataVinciConfig {
            semantics: self.cfg.semantics,
            repair_strategy: self.cfg.strategy,
            ..DataVinciConfig::default()
        });
        let mut engine = Engine::with_system(
            dv,
            EngineConfig {
                workers: self.cfg.workers,
                cache: true,
                cache_capacity: self.cfg.cache_capacity,
                telemetry: false,
                ..EngineConfig::default()
            },
        );
        if let Some(dir) = &self.cfg.store_dir {
            let store = ArtifactStore::open_with_budget(dir, tenant, self.cfg.store_budget)
                .map_err(|e| e.to_string())?;
            let loaded = engine.attach_store(store).map_err(|e| e.to_string())?;
            let mut metrics = self.metrics.lock().expect("metrics poisoned");
            metrics.add_counter("serve.store.loaded_records", loaded.total() as u64);
            metrics.add_counter("serve.store.skipped_records", loaded.skipped as u64);
        }
        let engine = Arc::new(engine);
        engines.insert(tenant.to_string(), Arc::clone(&engine));
        Ok(engine)
    }

    fn count(&self, name: &str, delta: u64) {
        self.metrics
            .lock()
            .expect("metrics poisoned")
            .add_counter(name, delta);
    }
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks serving
/// connections until a `shutdown` request arrives.
pub struct Server {
    listener: Listener,
    state: Arc<State>,
}

impl Server {
    /// Binds a TCP server (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind_tcp(addr: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        Ok(Server {
            listener: Listener::Tcp(TcpListener::bind(addr)?),
            state: Arc::new(State {
                cfg,
                engines: Mutex::new(HashMap::new()),
                metrics: Mutex::new(MetricsFrame::new()),
                shutting_down: AtomicBool::new(false),
                connections: AtomicU64::new(0),
            }),
        })
    }

    /// Binds a Unix-domain-socket server at `path` (removed on bind if a
    /// stale socket file is present, and again at shutdown).
    pub fn bind_unix(path: impl Into<PathBuf>, cfg: ServerConfig) -> std::io::Result<Server> {
        let path = path.into();
        // A previous daemon's socket file would make bind fail with
        // AddrInUse even though nobody is listening; remove it first.
        let _ = std::fs::remove_file(&path);
        Ok(Server {
            listener: Listener::Unix(UnixListener::bind(&path)?, path),
            state: Arc::new(State {
                cfg,
                engines: Mutex::new(HashMap::new()),
                metrics: Mutex::new(MetricsFrame::new()),
                shutting_down: AtomicBool::new(false),
                connections: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address, rendered (`host:port` for TCP, the path for
    /// Unix) — what a client passes to `--connect`.
    pub fn address(&self) -> String {
        match &self.listener {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".to_string()),
            Listener::Unix(_, path) => path.display().to_string(),
        }
    }

    /// Serves connections until a client sends `{"op":"shutdown"}`. Each
    /// connection gets its own thread; all threads share the tenant
    /// engines, so concurrent clients of one tenant hit one cache.
    pub fn run(self) -> std::io::Result<()> {
        let Server { listener, state } = self;
        let mut handles = Vec::new();
        loop {
            let conn = match &listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                Listener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            if state.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let conn = conn?;
            let state = Arc::clone(&state);
            let address = self_address(&listener);
            handles.push(std::thread::spawn(move || {
                state.connections.fetch_add(1, Ordering::SeqCst);
                serve_connection(conn, &state, &address);
            }));
        }
        for handle in handles {
            let _ = handle.join();
        }
        if let Listener::Unix(_, path) = &listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// The listener's own address, used by the shutdown path to wake the
/// blocking `accept`.
fn self_address(listener: &Listener) -> String {
    match listener {
        Listener::Tcp(l) => l
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| String::new()),
        Listener::Unix(_, path) => path.display().to_string(),
    }
}

/// Wakes a blocked `accept` after the shutdown flag is set by making one
/// throwaway connection to ourselves.
fn nudge(address: &str) {
    if address.contains(':') {
        let _ = TcpStream::connect(address);
    } else if !address.is_empty() {
        let _ = UnixStream::connect(address);
    }
}

fn serve_connection(conn: Conn, state: &State, address: &str) {
    let Ok(write_half) = conn.try_clone() else {
        return;
    };
    let mut writer = BufWriter::new(write_half);
    let reader = BufReader::new(conn);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        state.count("serve.requests", 1);
        let started = Instant::now();
        let (response, shutdown) = handle_request(&line, state);
        if response.get("ok") != Some(&Json::Bool(true)) {
            state.count("serve.errors", 1);
        }
        state
            .metrics
            .lock()
            .expect("metrics poisoned")
            .observe("serve.request_latency", started.elapsed());
        let ok = writeln!(writer, "{}", response.render()).and_then(|()| writer.flush());
        if shutdown {
            state.shutting_down.store(true, Ordering::SeqCst);
            nudge(address);
            return;
        }
        if ok.is_err() {
            break;
        }
    }
}

/// Parses and dispatches one request line. Returns the response and
/// whether the server should shut down after sending it.
fn handle_request(line: &str, state: &State) -> (Json, bool) {
    let request = match Json::parse(line) {
        Ok(json) => json,
        Err(e) => return (error_json(format!("bad request: {e}")), false),
    };
    let Some(op) = request.get("op").and_then(Json::as_str) else {
        return (error_json("missing \"op\" field".to_string()), false);
    };
    match op {
        "ping" => (
            Json::obj()
                .field("ok", Json::Bool(true))
                .field("pong", Json::Bool(true)),
            false,
        ),
        "clean" => (handle_clean(&request, state), false),
        "stats" => (handle_stats(state), false),
        "flush" => (handle_flush(state), false),
        "shutdown" => (Json::obj().field("ok", Json::Bool(true)), true),
        other => (error_json(format!("unknown op {other:?}")), false),
    }
}

fn error_json(message: String) -> Json {
    Json::obj()
        .field("ok", Json::Bool(false))
        .field("error", Json::str(message))
}

fn request_tenant(request: &Json) -> Result<&str, Json> {
    match request.get("tenant") {
        None => Ok(DEFAULT_TENANT),
        Some(t) => t
            .as_str()
            .ok_or_else(|| error_json("\"tenant\" must be a string".to_string())),
    }
}

fn handle_clean(request: &Json, state: &State) -> Json {
    let tenant = match request_tenant(request) {
        Ok(tenant) => tenant,
        Err(e) => return e,
    };
    let Some(csv) = request.get("csv").and_then(Json::as_str) else {
        return error_json("clean needs a \"csv\" string field".to_string());
    };
    let table = match io::parse_csv(csv) {
        Ok(table) => table,
        Err(e) => return error_json(format!("csv: {e}")),
    };
    let engine = match state.engine_for(tenant) {
        Ok(engine) => engine,
        Err(e) => return error_json(e),
    };
    let report = engine.clean_table(&table);
    let repaired = Engine::apply(&table, &report.table_report());
    state.count("serve.cleans", 1);
    state.count("serve.rows", table.n_rows() as u64);
    state.count(&format!("serve.tenant.{tenant}.cleans"), 1);
    state.count(
        &format!("serve.tenant.{tenant}.rows"),
        table.n_rows() as u64,
    );
    // Durability: the clean's artifacts hit disk before the response, so a
    // daemon killed right after replying still warm-starts.
    if let Err(e) = engine.flush_store() {
        state.count("serve.store.flush_errors", 1);
        return error_json(format!("store flush failed: {e}"));
    }
    Json::obj()
        .field("ok", Json::Bool(true))
        .field("csv", Json::str(io::to_csv(&repaired)))
        .field("n_rows", Json::Int(table.n_rows() as i64))
        .field("n_cols", Json::Int(table.n_cols() as i64))
        .field("n_detections", Json::Int(report.n_detections() as i64))
        .field("n_repairs", Json::Int(report.n_repairs() as i64))
        .field("cache_hits", Json::Int(report.cache_hits() as i64))
}

fn handle_stats(state: &State) -> Json {
    let engines = state.engines.lock().expect("engines poisoned");
    let mut tenants = Json::obj();
    let mut names: Vec<&String> = engines.keys().collect();
    names.sort();
    for name in names {
        if let Some(stats) = engines[name].cache_stats() {
            tenants = tenants.field(name, stats.to_json());
        }
    }
    drop(engines);
    let metrics = state.metrics.lock().expect("metrics poisoned");
    Json::obj()
        .field("ok", Json::Bool(true))
        .field(
            "connections",
            Json::Int(state.connections.load(Ordering::SeqCst) as i64),
        )
        .field("tenants", tenants)
        .field("metrics", crate::report::metrics_frame_json(&metrics))
}

fn handle_flush(state: &State) -> Json {
    let engines = state.engines.lock().expect("engines poisoned");
    let mut flushed = 0;
    for engine in engines.values() {
        match engine.flush_store() {
            Ok(Some(_)) => flushed += 1,
            Ok(None) => {}
            Err(e) => return error_json(format!("store flush failed: {e}")),
        }
    }
    Json::obj()
        .field("ok", Json::Bool(true))
        .field("flushed", Json::Int(flushed))
}

/// One blocking request/response exchange — the client side of the
/// protocol, shared by `datavinci-clean --connect` and the tests.
pub fn roundtrip(address: &str, request: &Json) -> Result<Json, String> {
    let mut conn = if address.contains(':') {
        Conn::Tcp(TcpStream::connect(address).map_err(|e| format!("connect {address}: {e}"))?)
    } else {
        Conn::Unix(UnixStream::connect(address).map_err(|e| format!("connect {address}: {e}"))?)
    };
    writeln!(conn, "{}", request.render()).map_err(|e| format!("send: {e}"))?;
    conn.flush().map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("receive: {e}"))?;
    if line.is_empty() {
        return Err("server closed the connection".to_string());
    }
    Json::parse(&line).map_err(|e| format!("bad response: {e}"))
}

impl crate::store::LoadStats {
    /// Records restored across all tiers.
    pub fn total(&self) -> usize {
        self.columns + self.sessions + self.snapshots
    }
}

// Surfaced here so the CLI can map a store failure to its exit code
// without string-matching.
impl StoreError {
    /// Is this a format-version problem (as opposed to I/O or misuse)?
    pub fn is_version_mismatch(&self) -> bool {
        matches!(self, StoreError::VersionMismatch { .. })
    }
}
