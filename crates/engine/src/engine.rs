//! The batch cleaning engine: DataVinci's column-wise pipeline behind a
//! worker pool and a fingerprint-keyed artifact cache.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crate::cache::{CacheLookup, CacheStats, ProfileCache, DEFAULT_CACHE_CAPACITY};
use crate::pool::WorkerPool;
use crate::report::{
    cache_stats_into, session_stats_into, BatchReport, CacheOutcome, ColumnOutcome, EngineReport,
};
use crate::store::{ArtifactStore, FlushStats, LoadStats, StoreError};
use datavinci_core::{AnalysisSession, DataVinci, RepairStrategy, TableReport};
use datavinci_table::{CellRef, CellValue, Table};
use datavinci_telemetry::{self as telemetry, MetricsFrame, MetricsRegistry, TaskProfile};

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per hardware thread.
    pub workers: usize,
    /// Cache learned artifacts across cleans?
    pub cache: bool,
    /// Bound on distinct cached column contents and table sessions
    /// ([`ProfileCache`]; least-recently-used entries evicted beyond it).
    /// The semantic mask-memo bound is the matching core-side knob
    /// (`DataVinciConfig::mask_cache_capacity`).
    pub cache_capacity: usize,
    /// Record structured telemetry (span trees, counters, latency
    /// histograms) for every clean? Off by default: with telemetry off
    /// every instrumentation point short-circuits on one relaxed atomic
    /// load and cleaning output is byte-identical.
    pub telemetry: bool,
    /// Override the wrapped system's repair strategy (planner, row-wise,
    /// or automaton intersection). `None` keeps whatever the
    /// `DataVinciConfig` already says. All strategies produce byte-identical
    /// reports; the knob trades exploration work and instrumentation.
    pub repair_strategy: Option<RepairStrategy>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            cache: true,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            telemetry: false,
            repair_strategy: None,
        }
    }
}

/// The parallel, cache-aware batch cleaning engine.
///
/// DataVinci's pipeline is column-independent (paper Figure 2), so the
/// engine schedules one task per `(table, column)` pair over a scoped-thread
/// pool and — when caching is on — reuses learned artifacts for unchanged or
/// append-only column content.
///
/// Cold cleans and re-cleans of *unchanged* content are byte-identical to
/// the sequential [`DataVinci::clean_table`] loop: same columns, same
/// order, same reports. Append-only reuse is an approximation — prior
/// patterns are re-scored rather than re-learned, so results can differ
/// from a from-scratch clean of the grown column; the engine falls back to
/// full profiling when the appended rows do not fit the prior language
/// (see the `CacheLookup::Append` arm and
/// [`CacheStats::append_fallbacks`](crate::CacheStats)).
pub struct Engine {
    dv: DataVinci,
    pool: WorkerPool,
    cache: Option<ProfileCache>,
    registry: MetricsRegistry,
    store: Option<ArtifactStore>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine around a default [`DataVinci`] with default configuration.
    pub fn new() -> Engine {
        Engine::with_config(EngineConfig::default())
    }

    /// An engine around a default [`DataVinci`].
    pub fn with_config(cfg: EngineConfig) -> Engine {
        Engine::with_system(DataVinci::new(), cfg)
    }

    /// An engine around an explicitly configured cleaning system (ablations,
    /// semantic modes, custom thresholds).
    pub fn with_system(dv: DataVinci, cfg: EngineConfig) -> Engine {
        let dv = match cfg.repair_strategy {
            Some(strategy) if strategy != dv.config().repair_strategy => {
                let mut system_cfg = dv.config().clone();
                system_cfg.repair_strategy = strategy;
                DataVinci::with_config(system_cfg)
            }
            _ => dv,
        };
        Engine {
            dv,
            pool: WorkerPool::new(cfg.workers),
            cache: cfg
                .cache
                .then(|| ProfileCache::with_capacity(cfg.cache_capacity)),
            registry: MetricsRegistry::new(cfg.telemetry),
            store: None,
        }
    }

    /// Attaches a durable artifact store and warms the cache from it: every
    /// intact record the store holds becomes a live cache entry, so the
    /// first clean after a restart hits like the thousandth. Subsequent
    /// [`Engine::flush_store`] calls persist back to the same store.
    /// Requires caching ([`StoreError::CacheDisabled`] otherwise).
    pub fn attach_store(&mut self, store: ArtifactStore) -> Result<LoadStats, StoreError> {
        let cache = self.cache.as_ref().ok_or(StoreError::CacheDisabled)?;
        let stats = store.load_into(cache, self.dv.mask_cache())?;
        self.store = Some(store);
        Ok(stats)
    }

    /// Flushes the cache to the attached store, if any (atomic
    /// write-then-rename; `Ok(None)` when no store is attached).
    pub fn flush_store(&self) -> Result<Option<FlushStats>, StoreError> {
        match (&self.store, &self.cache) {
            (Some(store), Some(cache)) => store.flush_from(cache).map(Some),
            (Some(_), None) => Err(StoreError::CacheDisabled),
            (None, _) => Ok(None),
        }
    }

    /// The attached artifact store, if any.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// The engine's metrics registry: the cumulative sink every clean's
    /// frame is absorbed into (counters add, gauges last-write-wins,
    /// histograms merge). Disabled registries stay empty.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The wrapped cleaning system.
    pub fn system(&self) -> &DataVinci {
        &self.dv
    }

    /// The effective worker count.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Cache telemetry, if caching is enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(ProfileCache::stats)
    }

    /// Number of column entries currently resident in the artifact cache
    /// (0 when caching is disabled). Exposed so long-stream tests can
    /// assert the capacity bound holds.
    pub fn cache_len(&self) -> usize {
        self.cache.as_ref().map_or(0, ProfileCache::len)
    }

    /// Drops all cached artifacts and telemetry (no-op when disabled).
    pub fn clear_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.clear();
        }
    }

    /// Cleans a single column through the cache (no pool dispatch): the
    /// entry point for callers that sweep columns themselves.
    ///
    /// Recomputes the table fingerprint (an O(cells) hash) and opens a
    /// fresh (cache-seeded) session on every call; prefer
    /// [`Engine::clean_table`]/[`Engine::clean_batch`], which hash each
    /// table once and share one session across all its columns.
    pub fn clean_column(&self, table: &Table, col: usize) -> ColumnOutcome {
        let (outcome, profile) = telemetry::collect(self.registry.enabled(), || {
            let fingerprint = table.fingerprint();
            let session = self.open_session(table, fingerprint);
            let outcome = self.clean_unit(&session, table, fingerprint, col);
            self.store_session(fingerprint, crate::cache::header_key(table), session);
            outcome
        });
        if let Some(profile) = profile {
            self.registry.absorb_frame(&profile.metrics);
        }
        outcome
    }

    /// A session for `table`. Reuse is layered: if the cache holds a
    /// detached session for the same header shape whose table is a prefix
    /// of this one (streaming/append growth), it is *resumed* — rendered
    /// matrix, row interner, and pools carry over and only the appended
    /// rows are processed. Otherwise a fresh session is opened, seeded with
    /// the cached `FeatureSet` when identical table content was cleaned
    /// before.
    fn open_session<'t>(&self, table: &'t Table, fingerprint: u64) -> AnalysisSession<'t> {
        if let Some(cache) = &self.cache {
            if let Some(snapshot) =
                cache.take_resumable_snapshot(crate::cache::header_key(table), table)
            {
                return self.dv.resume_session(snapshot, table);
            }
        }
        let session = self.dv.session(table);
        if let Some(cache) = &self.cache {
            if let Some(features) = cache.lookup_session(fingerprint) {
                session.seed_features(features);
            }
        }
        session
    }

    /// Stores a finished session back into the cache: its generated
    /// features into the session layer (keyed by table content) and its
    /// detached state into the snapshot layer (keyed by header shape, for
    /// append-only resume).
    fn store_session(&self, fingerprint: u64, header_key: u64, session: AnalysisSession<'_>) {
        if let Some(cache) = &self.cache {
            if let Some(features) = session.features_arc() {
                cache.insert_session(fingerprint, features);
            }
            cache.insert_snapshot(header_key, session.into_snapshot());
        }
    }

    /// Cleans every sufficiently-textual column of one table, in parallel.
    ///
    /// The report's `elapsed` keeps its batch semantics (summed per-column
    /// cleaning time); measure wall time around this call if needed.
    pub fn clean_table(&self, table: &Table) -> EngineReport {
        let mut batch = self.clean_batch(std::slice::from_ref(table));
        let mut report = batch.tables.pop().expect("one table in, one out");
        // The batch profile is a superset of the single table's (same task
        // spans plus the batch-level scheduling spans and cache aggregates):
        // hand the richer one to single-table callers.
        if batch.telemetry.is_some() {
            report.telemetry = batch.telemetry;
        }
        report
    }

    /// Cleans a queue of independent tables, in parallel.
    ///
    /// Work is scheduled at `(table, column)` granularity so a batch of
    /// small tables and one huge table still load-balances. Each table's
    /// columns share one [`AnalysisSession`] (features, row vectors, and
    /// pools are built at most once per table), and tables with identical
    /// fingerprints share one session outright.
    pub fn clean_batch(&self, tables: &[Table]) -> BatchReport {
        let (mut batch, profile) =
            telemetry::collect(self.registry.enabled(), || self.clean_batch_inner(tables));
        if let Some(mut profile) = profile {
            cache_stats_into(&mut profile.metrics, &batch.cache);
            profile
                .metrics
                .set_gauge("engine.batch_elapsed_ms", batch.elapsed.as_secs_f64() * 1e3);
            profile
                .metrics
                .set_gauge("engine.workers", self.pool.workers() as f64);
            // The six pipeline stages are part of the exported schema even
            // when a clean never reached one of them (e.g. all cache hits).
            for stage in telemetry::stages::ALL {
                profile.metrics.ensure_histogram(stage);
            }
            self.registry.absorb_frame(&profile.metrics);
            batch.telemetry = Some(profile);
        }
        batch
    }

    fn clean_batch_inner(&self, tables: &[Table]) -> BatchReport {
        let _root = telemetry::span("engine.clean_batch");
        let started = Instant::now();
        let min_text = self.dv.config().min_text_fraction;

        // One unit per cleanable column; table fingerprints computed once.
        let fingerprint_span = telemetry::span("engine.fingerprint");
        let prints: Vec<u64> = tables.iter().map(Table::fingerprint).collect();
        let units: Vec<(usize, usize)> = tables
            .iter()
            .enumerate()
            .flat_map(|(ti, t)| {
                (0..t.n_cols())
                    .filter(|&c| {
                        t.column(c)
                            .is_some_and(|col| col.text_fraction() >= min_text)
                    })
                    .map(move |c| (ti, c))
            })
            .collect();
        drop(fingerprint_span);
        telemetry::counter("engine.tables", tables.len() as u64);
        telemetry::counter("engine.units", units.len() as u64);

        // One session per *distinct* table fingerprint, resumed from the
        // cache's snapshot layer (append growth) or seeded from its session
        // layer (identical content) when possible.
        let open_span = telemetry::span("engine.open_sessions");
        let mut session_of: Vec<usize> = Vec::with_capacity(tables.len());
        let mut slots: HashMap<u64, usize> = HashMap::new();
        let mut sessions: Vec<AnalysisSession<'_>> = Vec::new();
        let mut slot_keys: Vec<(u64, u64)> = Vec::new();
        for (ti, table) in tables.iter().enumerate() {
            let slot = *slots.entry(prints[ti]).or_insert_with(|| {
                sessions.push(self.open_session(table, prints[ti]));
                slot_keys.push((prints[ti], crate::cache::header_key(table)));
                sessions.len() - 1
            });
            session_of.push(slot);
        }
        drop(open_span);
        telemetry::counter("engine.distinct_sessions", sessions.len() as u64);

        // Each worker task records into its own thread-local collector;
        // profiles come back with the outcomes and are grafted under this
        // batch's root span at join (no locks on the cleaning hot path).
        let enabled = self.registry.enabled();
        // Largest columns are claimed first so one huge table enqueued late
        // can't serialize the batch's tail behind a single worker.
        let sizes: Vec<usize> = units.iter().map(|&(ti, _)| tables[ti].n_rows()).collect();
        let outcomes = self.pool.map_sized(&units, &sizes, |_, &(ti, col)| {
            telemetry::collect(enabled, || {
                self.clean_unit(&sessions[session_of[ti]], &tables[ti], prints[ti], col)
            })
        });

        let mut per_table: Vec<EngineReport> =
            tables.iter().map(|_| EngineReport::default()).collect();
        for (&(ti, _), (outcome, profile)) in units.iter().zip(outcomes) {
            per_table[ti].elapsed += outcome.elapsed;
            if let Some(profile) = profile {
                telemetry::absorb(&profile);
                per_table[ti]
                    .telemetry
                    .get_or_insert_with(TaskProfile::default)
                    .merge(&profile);
            }
            per_table[ti].columns.push(outcome);
        }
        for (ti, report) in per_table.iter_mut().enumerate() {
            report.session = sessions[session_of[ti]].stats();
            if enabled {
                let frame = &mut report
                    .telemetry
                    .get_or_insert_with(TaskProfile::default)
                    .metrics;
                session_stats_into(frame, &report.session);
                frame.set_gauge(
                    "engine.table_elapsed_ms",
                    report.elapsed.as_secs_f64() * 1e3,
                );
                for stage in telemetry::stages::ALL {
                    frame.ensure_histogram(stage);
                }
            }
        }
        if enabled {
            // Batch-level session aggregates walk *distinct* sessions: the
            // per-table mirrors above would double-count tables sharing a
            // fingerprint (and therefore a session).
            let mut frame = MetricsFrame::new();
            for session in &sessions {
                session_stats_into(&mut frame, &session.stats());
            }
            telemetry::absorb(&TaskProfile {
                spans: Vec::new(),
                metrics: frame,
            });
        }
        for (session, &(fingerprint, header_key)) in sessions.into_iter().zip(&slot_keys) {
            self.store_session(fingerprint, header_key, session);
        }
        BatchReport {
            tables: per_table,
            elapsed: started.elapsed(),
            workers: self.pool.workers(),
            cache: self.cache_stats().unwrap_or_default(),
            telemetry: None,
        }
    }

    /// Cleans one column through the shared table session, consulting the
    /// cache layer by layer.
    fn clean_unit(
        &self,
        session: &AnalysisSession<'_>,
        table: &Table,
        table_fingerprint: u64,
        col: usize,
    ) -> ColumnOutcome {
        let _span = telemetry::span("engine.clean_column");
        let started = Instant::now();
        let column = table.column(col).expect("column in range");

        let (report, cache_outcome) = match &self.cache {
            None => {
                let analysis = self.dv.analyze_column_in(session, col);
                (
                    self.dv.repair_analysis_in(session, &analysis),
                    CacheOutcome::Disabled,
                )
            }
            Some(cache) => match cache.lookup(column, col, table_fingerprint) {
                CacheLookup::Report(entry) => (entry.report.clone(), CacheOutcome::ReportHit),
                CacheLookup::Analysis(entry) => {
                    let report = self.dv.repair_analysis_in(session, &entry.analysis);
                    cache.insert(
                        column,
                        col,
                        table_fingerprint,
                        Arc::clone(&entry.analysis),
                        report.clone(),
                    );
                    (report, CacheOutcome::AnalysisHit)
                }
                CacheLookup::Append(entry) => {
                    // Reuses both the prior's learned patterns (re-scored)
                    // and its interning pool (extended with the appended
                    // rows and installed into the session), so a warm
                    // re-score skips re-interning.
                    let analysis =
                        self.dv
                            .analyze_column_appended_in(session, col, &entry.analysis);
                    // Append reuse assumes the prior language still
                    // describes the column. If the appended rows mostly
                    // fall outside it — or significance collapsed under
                    // the new row count — the assumption failed:
                    // re-profile from scratch like a miss.
                    let appended = column.len() - entry.n_rows;
                    let appended_errors = analysis
                        .error_rows
                        .iter()
                        .filter(|&&row| row >= entry.n_rows)
                        .count();
                    let language_broke = appended_errors * 2 > appended
                        || (analysis.significant.is_empty()
                            && !entry.analysis.significant.is_empty());
                    if language_broke {
                        cache.record_append_fallback();
                        let analysis = self.dv.analyze_column_in(session, col);
                        let report = self.dv.repair_analysis_in(session, &analysis);
                        cache.insert(
                            column,
                            col,
                            table_fingerprint,
                            Arc::new(analysis),
                            report.clone(),
                        );
                        (report, CacheOutcome::Miss)
                    } else {
                        let report = self.dv.repair_analysis_in(session, &analysis);
                        cache.insert(
                            column,
                            col,
                            table_fingerprint,
                            Arc::new(analysis),
                            report.clone(),
                        );
                        (report, CacheOutcome::AppendHit)
                    }
                }
                CacheLookup::Miss => {
                    let analysis = self.dv.analyze_column_in(session, col);
                    let report = self.dv.repair_analysis_in(session, &analysis);
                    cache.insert(
                        column,
                        col,
                        table_fingerprint,
                        Arc::new(analysis),
                        report.clone(),
                    );
                    (report, CacheOutcome::Miss)
                }
            },
        };

        let elapsed = started.elapsed();
        if telemetry::is_active() {
            telemetry::counter(cache_outcome.metric(), 1);
            telemetry::observe("engine.column_latency", elapsed);
        }
        ColumnOutcome {
            report,
            cache: cache_outcome,
            elapsed,
        }
    }

    /// Applies a report's chosen repairs to a copy of `table`.
    pub fn apply(table: &Table, report: &TableReport) -> Table {
        let mut out = table.clone();
        for col_report in &report.columns {
            for repair in &col_report.repairs {
                out.set_cell(
                    CellRef::new(col_report.col, repair.row),
                    CellValue::text(repair.repaired.clone()),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_table::Column;

    fn players_table() -> Table {
        Table::new(vec![
            Column::from_texts(
                "Category",
                &[
                    "Professional",
                    "Professional",
                    "Professional",
                    "Qualifier",
                    "Qualifier",
                    "Professional",
                ],
            ),
            Column::from_texts(
                "Player ID",
                &[
                    "IN-674-PRO",
                    "usa_837",
                    "DZ-173-PRO",
                    "US-201-QUA",
                    "CN-924-QUA",
                    "FR-475-PRO",
                ],
            ),
        ])
    }

    #[test]
    fn engine_is_sync_and_send() {
        fn check<T: Sync + Send>() {}
        check::<Engine>();
    }

    #[test]
    fn engine_matches_sequential_on_figure2() {
        let table = players_table();
        let sequential = DataVinci::new().clean_table(&table);
        for workers in [1, 4] {
            let engine = Engine::with_config(EngineConfig {
                workers,
                cache: true,
                ..EngineConfig::default()
            });
            let report = engine.clean_table(&table);
            assert_eq!(
                format!("{:?}", report.table_report()),
                format!("{sequential:?}"),
                "workers={workers}"
            );
            assert_eq!(report.n_repairs(), 1);
        }
    }

    #[test]
    fn warm_reclean_hits_report_cache() {
        let table = players_table();
        let engine = Engine::with_config(EngineConfig {
            workers: 2,
            cache: true,
            ..EngineConfig::default()
        });
        let cold = engine.clean_table(&table);
        assert_eq!(cold.cache_hits(), 0);
        let warm = engine.clean_table(&table);
        assert_eq!(warm.cache_hits(), warm.columns.len());
        assert!(warm
            .columns
            .iter()
            .all(|c| c.cache == CacheOutcome::ReportHit));
        assert_eq!(
            format!("{:?}", warm.table_report()),
            format!("{:?}", cold.table_report())
        );
        let stats = engine.cache_stats().unwrap();
        assert!(stats.report_hits >= 2);
        assert_eq!(stats.misses as usize, cold.columns.len());
    }

    #[test]
    fn repair_strategy_override_rewires_the_system() {
        let engine = Engine::with_config(EngineConfig {
            repair_strategy: Some(RepairStrategy::Intersect),
            ..EngineConfig::default()
        });
        assert_eq!(
            engine.system().config().repair_strategy,
            RepairStrategy::Intersect
        );
        // `None` keeps the wrapped system's own choice.
        let keep = Engine::with_system(
            DataVinci::with_config(datavinci_core::DataVinciConfig::rowwise_repair()),
            EngineConfig::default(),
        );
        assert_eq!(
            keep.system().config().repair_strategy,
            RepairStrategy::RowWise
        );
        // Overridden engines still clean identically.
        let table = players_table();
        let baseline = Engine::new().clean_table(&table);
        let report = engine.clean_table(&table);
        assert_eq!(
            format!("{:?}", report.table_report()),
            format!("{:?}", baseline.table_report())
        );
    }

    #[test]
    fn cache_disabled_reports_disabled_outcomes() {
        let engine = Engine::with_config(EngineConfig {
            workers: 1,
            cache: false,
            ..EngineConfig::default()
        });
        let report = engine.clean_table(&players_table());
        assert!(report
            .columns
            .iter()
            .all(|c| c.cache == CacheOutcome::Disabled));
        assert!(engine.cache_stats().is_none());
    }

    #[test]
    fn append_only_reuse_still_repairs_new_errors() {
        let engine = Engine::new();
        let base = Table::new(vec![Column::from_texts(
            "Quarter",
            &["Q4-2002", "Q3-2002", "Q1-2001", "Q2-2002"],
        )]);
        engine.clean_table(&base);

        // Append rows, one erroneous: profile reuse must still catch it.
        let grown = Table::new(vec![Column::from_texts(
            "Quarter",
            &[
                "Q4-2002", "Q3-2002", "Q1-2001", "Q2-2002", "Q1-2003", "Q32001",
            ],
        )]);
        let report = engine.clean_table(&grown);
        assert_eq!(report.columns[0].cache, CacheOutcome::AppendHit);
        let repairs = &report.columns[0].report.repairs;
        assert_eq!(repairs.len(), 1, "{report:#?}");
        assert_eq!(repairs[0].repaired, "Q3-2001");
        assert_eq!(engine.cache_stats().unwrap().append_hits, 1);
    }

    #[test]
    fn append_growth_resumes_prior_session() {
        let engine = Engine::new();
        let base = Table::new(vec![Column::from_texts(
            "Quarter",
            &["Q4-2002", "Q3-2002", "Q1-2001", "Q2-2002"],
        )]);
        engine.clean_table(&base);

        let grown = Table::new(vec![Column::from_texts(
            "Quarter",
            &[
                "Q4-2002", "Q3-2002", "Q1-2001", "Q2-2002", "Q1-2003", "Q32001",
            ],
        )]);
        let report = engine.clean_table(&grown);
        // The grown table's clean rode the prior session: state was resumed
        // and only the two appended rows were rendered/interned anew.
        assert_eq!(engine.cache_stats().unwrap().session_resumes, 1);
        assert_eq!(report.session.session_extensions, 1);
        assert_eq!(report.session.rows_appended, 2);
        assert_eq!(report.columns[0].report.repairs[0].repaired, "Q3-2001");
        // An unrelated shape does not resume.
        let other = players_table();
        engine.clean_table(&other);
        assert_eq!(engine.cache_stats().unwrap().session_resumes, 1);
    }

    #[test]
    fn apply_writes_repairs_back() {
        let table = players_table();
        let engine = Engine::new();
        let report = engine.clean_table(&table);
        let repaired = Engine::apply(&table, &report.table_report());
        let ids: Vec<String> = repaired.column(1).unwrap().rendered();
        assert_eq!(ids[1], "US-837-PRO");
        // Untouched cells stay intact.
        assert_eq!(ids[0], "IN-674-PRO");
        assert_eq!(table.column(1).unwrap().rendered()[1], "usa_837");
    }

    #[test]
    fn batch_cleans_every_table() {
        let engine = Engine::with_config(EngineConfig {
            workers: 4,
            cache: true,
            ..EngineConfig::default()
        });
        let tables = vec![players_table(), players_table()];
        let batch = engine.clean_batch(&tables);
        assert_eq!(batch.tables.len(), 2);
        // Identical tables: the duplicate may be served from cache, but the
        // reports must agree.
        assert_eq!(
            format!("{:?}", batch.tables[0].table_report()),
            format!("{:?}", batch.tables[1].table_report())
        );
        assert_eq!(batch.workers, 4);
        assert_eq!(batch.n_repairs(), 2);
    }
}
