//! A std-only scoped-thread worker pool.
//!
//! The engine's unit of work (one column of one table) is embarrassingly
//! parallel, so the pool is deliberately simple: N scoped workers pull task
//! indices from a shared atomic counter and push `(index, result)` pairs
//! into a private per-worker buffer; the buffers are merged back into input
//! order after the scope joins. No channels, no per-item mutexes, no unsafe.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-width worker pool over borrowed data (scoped threads).
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool with `workers` threads; `0` means one per hardware thread.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            workers
        };
        WorkerPool { workers }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item, in parallel, preserving input order in the
    /// output. `f` receives `(index, &item)`.
    ///
    /// Work is distributed dynamically (atomic task counter), so uneven
    /// per-item costs — big columns next to tiny ones — still load-balance.
    /// A panicking task propagates after all workers finish.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_in_order(items, None, f)
    }

    /// Like [`WorkerPool::map`], but claims tasks largest-first according to
    /// `sizes` (one hint per item, same length as `items`). Output order is
    /// still input order; only the claim schedule changes, so one huge item
    /// enqueued last can no longer serialize the batch's tail.
    ///
    /// Ties claim in input order, and a 1-worker pool runs sequentially in
    /// input order, so results are identical to `map` for any pure `f`.
    pub fn map_sized<T, R, F>(&self, items: &[T], sizes: &[usize], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        assert_eq!(items.len(), sizes.len(), "one size hint per item");
        let workers = self.workers.min(items.len());
        if workers <= 1 {
            return self.map_in_order(items, None, f);
        }
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(sizes[i]));
        self.map_in_order(items, Some(&order), f)
    }

    /// Shared driver: workers claim positions from an atomic counter
    /// (optionally indirected through a claim `order`), buffer
    /// `(index, result)` pairs privately, and the buffers are merged into an
    /// input-ordered output after join. The first panic payload is re-raised
    /// once every worker has finished.
    fn map_in_order<T, R, F>(&self, items: &[T], order: Option<&[usize]>, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.workers.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        let next = AtomicUsize::new(0);
        let f = &f;
        let joined: Vec<std::thread::Result<Vec<(usize, R)>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut out: Vec<(usize, R)> = Vec::new();
                        loop {
                            let pos = next.fetch_add(1, Ordering::Relaxed);
                            if pos >= items.len() {
                                break;
                            }
                            let i = order.map_or(pos, |o| o[pos]);
                            out.push((i, f(i, &items[i])));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });

        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        let mut panic_payload = None;
        for result in joined {
            match result {
                Ok(buf) => {
                    for (i, r) in buf {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every task index was claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_workers_means_hardware_parallelism() {
        assert!(WorkerPool::new(0).workers() >= 1);
        assert_eq!(WorkerPool::new(3).workers(), 3);
    }

    #[test]
    fn map_preserves_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.map(&[] as &[u32], |_, &x| x), Vec::<u32>::new());
        assert_eq!(pool.map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn map_results_match_sequential_regardless_of_workers() {
        let items: Vec<String> = (0..37).map(|i| format!("v{i}")).collect();
        let seq = WorkerPool::new(1).map(&items, |i, s| format!("{i}:{s}"));
        for workers in [2, 4, 16] {
            let par = WorkerPool::new(workers).map(&items, |i, s| format!("{i}:{s}"));
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn map_sized_matches_map_for_any_size_hints() {
        let items: Vec<usize> = (0..53).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for workers in [1, 2, 4] {
            let pool = WorkerPool::new(workers);
            // Ascending, descending, constant, and "one huge item last" hints
            // must all produce input-ordered output.
            let hint_sets: Vec<Vec<usize>> = vec![
                items.clone(),
                items.iter().rev().cloned().collect(),
                vec![7; items.len()],
                {
                    let mut h = vec![1; items.len()];
                    *h.last_mut().unwrap() = 1_000_000;
                    h
                },
            ];
            for sizes in &hint_sets {
                let out = pool.map_sized(&items, sizes, |_, &x| x * 3 + 1);
                assert_eq!(out, expected, "workers={workers}");
            }
        }
    }

    #[test]
    fn map_sized_claims_largest_first() {
        use std::sync::Mutex;
        // With one worker forced through the parallel path being impossible
        // (workers<=1 short-circuits), use 2 workers and record claim order;
        // the first two claims must be the two largest items.
        let claimed = Mutex::new(Vec::new());
        let items: Vec<usize> = (0..16).collect();
        let sizes: Vec<usize> = items.iter().map(|&x| x * 10).collect();
        WorkerPool::new(2).map_sized(&items, &sizes, |i, _| {
            claimed.lock().unwrap().push(i);
        });
        let claimed = claimed.lock().unwrap();
        assert_eq!(claimed.len(), items.len());
        assert!(
            claimed[0] == 15 || claimed[1] == 15,
            "largest item claimed in the first wave: {claimed:?}"
        );
    }

    #[test]
    fn panic_mid_batch_propagates_after_workers_finish() {
        use std::sync::atomic::AtomicUsize;
        let completed = AtomicUsize::new(0);
        let items: Vec<usize> = (0..40).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            WorkerPool::new(4).map(&items, |_, &x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 13"), "payload preserved: {msg}");
        // Every non-panicking task still ran: the pool drains the batch
        // before re-raising.
        assert_eq!(completed.load(Ordering::Relaxed), items.len() - 1);
    }

    #[test]
    fn map_sized_rejects_mismatched_hints() {
        let result = std::panic::catch_unwind(|| {
            WorkerPool::new(2).map_sized(&[1u32, 2], &[5usize], |_, &x| x)
        });
        assert!(result.is_err());
    }
}
