//! A std-only scoped-thread worker pool.
//!
//! The engine's unit of work (one column of one table) is embarrassingly
//! parallel, so the pool is deliberately simple: N scoped workers pull task
//! indices from a shared atomic counter and write results into per-slot
//! cells. No channels, no external crates, no unsafe.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width worker pool over borrowed data (scoped threads).
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool with `workers` threads; `0` means one per hardware thread.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            workers
        };
        WorkerPool { workers }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item, in parallel, preserving input order in the
    /// output. `f` receives `(index, &item)`.
    ///
    /// Work is distributed dynamically (atomic task counter), so uneven
    /// per-item costs — big columns next to tiny ones — still load-balance.
    /// A panicking task propagates after all workers finish.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.workers.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let result = f(i, &items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every task index was claimed exactly once")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_workers_means_hardware_parallelism() {
        assert!(WorkerPool::new(0).workers() >= 1);
        assert_eq!(WorkerPool::new(3).workers(), 3);
    }

    #[test]
    fn map_preserves_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.map(&[] as &[u32], |_, &x| x), Vec::<u32>::new());
        assert_eq!(pool.map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn map_results_match_sequential_regardless_of_workers() {
        let items: Vec<String> = (0..37).map(|i| format!("v{i}")).collect();
        let seq = WorkerPool::new(1).map(&items, |i, s| format!("{i}:{s}"));
        for workers in [2, 4, 16] {
            let par = WorkerPool::new(workers).map(&items, |i, s| format!("{i}:{s}"));
            assert_eq!(par, seq, "workers={workers}");
        }
    }
}
