//! The column cache: fingerprint-keyed reuse of learned cleaning artifacts.
//!
//! DataVinci's per-column work splits into three reusable layers:
//!
//! 1. the finished [`ColumnReport`] — reusable only when the *whole table*
//!    is unchanged (repair concretization reads sibling-column features);
//! 2. the [`ColumnAnalysis`] (abstraction + profile + detection) — purely
//!    column-local, reusable whenever the column content is unchanged;
//! 3. the learned `ColumnProfile` patterns — reusable for *append-only*
//!    growth, where the old rows still define the column language and only
//!    pattern membership needs re-scoring.
//!
//! Lookups classify into those layers via [`datavinci_table::Column`]
//! fingerprints (rolling, so a prefix fingerprint detects appends) and
//! record hit/miss telemetry.
//!
//! On top of the column layers sits the **session layer**: the engine's
//! unit of table-scoped reuse. A clean's `AnalysisSession` generates the
//! table's `FeatureSet` at most once; the cache stores that set keyed by
//! the *table* fingerprint so a later session over identical table content
//! is seeded instead of regenerating ([`ProfileCache::lookup_session`]).
//!
//! The **snapshot layer** goes one further for append-only growth: after a
//! clean, the whole detached [`SessionSnapshot`] (rendered matrix, row
//! interner, pools, features) is kept — the *latest* per header shape — so
//! the next clean of the same table *plus appended rows* resumes the prior
//! session instead of re-rendering and re-interning the shared prefix
//! ([`ProfileCache::take_resumable_snapshot`]). This is the engine-side
//! substrate of streaming cleaning.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use datavinci_core::{persist, ColumnAnalysis, ColumnReport, FeatureSet, SessionSnapshot};
use datavinci_table::{Column, Table};

/// The snapshot-layer key: a fingerprint of the table's header names in
/// order. Appending rows never changes it, so a growing table keeps finding
/// its own prior snapshot. Computed with the toolchain-stable
/// [`datavinci_table::Fingerprinter`] (not `DefaultHasher`) because the
/// durable artifact store persists these keys: a store written by one build
/// must resolve them in another.
pub fn header_key(table: &Table) -> u64 {
    table.header_fingerprint()
}

/// Default bound on distinct cached column contents (least-recently-used
/// entries evicted beyond it), keeping a long-lived engine's footprint
/// proportional to its working set rather than to everything it has ever
/// cleaned.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Cache telemetry counters (cumulative since construction or `clear`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Whole-report reuse: column and table both unchanged.
    pub report_hits: u64,
    /// Analysis reuse: column unchanged, table context changed (repair
    /// re-runs against the new table).
    pub analysis_hits: u64,
    /// Profile reuse: column grew append-only (patterns re-scored, repair
    /// re-runs).
    pub append_hits: u64,
    /// Append lookups the engine abandoned because the appended rows did
    /// not fit the prior language (re-profiled from scratch instead; these
    /// are counted under `misses`, not `append_hits`).
    pub append_fallbacks: u64,
    /// Full recomputation.
    pub misses: u64,
    /// Session-layer reuse: a new clean of identical table content was
    /// seeded with the cached table `FeatureSet` instead of regenerating.
    pub session_hits: u64,
    /// Snapshot-layer reuse: a clean of a grown table resumed the prior
    /// session's state (rendered matrix, row interner, pools) instead of
    /// rebuilding it.
    pub session_resumes: u64,
    /// Report-tier entries evicted by the capacity bound.
    pub report_evictions: u64,
    /// Session-tier (feature set) entries evicted by the capacity bound.
    pub session_evictions: u64,
    /// Snapshot-tier entries evicted by the capacity bound.
    pub snapshot_evictions: u64,
    /// Current cache occupancy in serialized bytes, summed across all
    /// tiers (a gauge: what flushing the cache to the artifact store would
    /// write, and the basis for the store's size budget).
    pub bytes: u64,
}

impl CacheStats {
    /// All hits, across the three reuse layers.
    pub fn hits(&self) -> u64 {
        self.report_hits + self.analysis_hits + self.append_hits
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses
    }

    /// The canonical JSON rendering (shared by the CLI and bench bins).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj()
            .field("report_hits", Json::Int(self.report_hits as i64))
            .field("analysis_hits", Json::Int(self.analysis_hits as i64))
            .field("append_hits", Json::Int(self.append_hits as i64))
            .field("append_fallbacks", Json::Int(self.append_fallbacks as i64))
            .field("misses", Json::Int(self.misses as i64))
            .field("session_hits", Json::Int(self.session_hits as i64))
            .field("session_resumes", Json::Int(self.session_resumes as i64))
            .field("report_evictions", Json::Int(self.report_evictions as i64))
            .field(
                "session_evictions",
                Json::Int(self.session_evictions as i64),
            )
            .field(
                "snapshot_evictions",
                Json::Int(self.snapshot_evictions as i64),
            )
            .field("bytes", Json::Int(self.bytes as i64))
    }
}

/// One cached column: the artifacts plus the identity they were learned on.
#[derive(Debug)]
pub struct CachedColumn {
    /// Column name at learn time (keys the append-probing name index, and
    /// persists so a reloaded store can rebuild that index).
    pub name: String,
    /// Column content fingerprint at learn time.
    pub fingerprint: u64,
    /// Whole-table fingerprint at learn time (gates report reuse).
    pub table_fingerprint: u64,
    /// Column index at learn time (analyses embed their column index).
    pub col: usize,
    /// Row count at learn time (gates append detection).
    pub n_rows: usize,
    /// The finished analysis.
    pub analysis: Arc<ColumnAnalysis>,
    /// The finished report.
    pub report: ColumnReport,
}

/// The outcome of one cache lookup.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// Column + table unchanged: the cached report is the answer.
    Report(Arc<CachedColumn>),
    /// Column unchanged in a different table: reuse the analysis, re-repair.
    Analysis(Arc<CachedColumn>),
    /// Column grew append-only: reuse the learned profile, re-detect.
    Append(Arc<CachedColumn>),
    /// Nothing reusable.
    Miss,
}

#[derive(Default)]
struct Inner {
    /// Exact content → entry.
    by_fingerprint: HashMap<u64, Arc<CachedColumn>>,
    /// Latest entry per column name, for append-only prefix probing.
    by_name: HashMap<String, Arc<CachedColumn>>,
    /// Recency order of `by_fingerprint` keys (least-recently-used at the
    /// front); hits and re-inserts move a key to the back.
    order: VecDeque<u64>,
    /// Session layer: table fingerprint → the table's generated features.
    by_table: HashMap<u64, Arc<FeatureSet>>,
    /// Recency order of `by_table` keys (LRU at the front).
    table_order: VecDeque<u64>,
    /// Snapshot layer: header key → the latest detached session for a table
    /// with those headers (one per shape: inserts replace).
    snapshots: HashMap<u64, SessionSnapshot>,
    /// Recency order of `snapshots` keys (LRU at the front).
    snapshot_order: VecDeque<u64>,
    /// Serialized payload size per report-tier fingerprint, session-tier
    /// table fingerprint, and snapshot-tier header key — kept so evictions
    /// can debit the running total exactly.
    col_bytes: HashMap<u64, u64>,
    session_bytes: HashMap<u64, u64>,
    snapshot_bytes: HashMap<u64, u64>,
    /// Running occupancy across all tiers, in serialized bytes.
    bytes: u64,
    stats: CacheStats,
}

impl Inner {
    fn set_tier_bytes(tier: &mut HashMap<u64, u64>, total: &mut u64, key: u64, size: u64) {
        if let Some(old) = tier.insert(key, size) {
            *total -= old;
        }
        *total += size;
    }

    fn drop_tier_bytes(tier: &mut HashMap<u64, u64>, total: &mut u64, key: u64) {
        if let Some(old) = tier.remove(&key) {
            *total -= old;
        }
    }
}

/// Fixed per-record framing cost the byte accounting adds on top of the
/// serialized payload (kind tag + key + length + checksum in the store's
/// on-disk record format), so `cache.bytes` tracks what a flush writes.
const TIER_RECORD_OVERHEAD: u64 = 25;

/// Serialized size of one report-tier entry: identity fields + analysis +
/// report payloads, plus record framing. This is exactly what the artifact
/// store writes for the entry, so summing these sizes prices the cache for
/// the store's disk budget.
fn column_entry_bytes(entry: &CachedColumn) -> u64 {
    let mut buf = Vec::new();
    persist::encode_column_analysis(&entry.analysis, &mut buf);
    persist::encode_column_report(&entry.report, &mut buf);
    // Identity: name (length-prefixed) + fingerprint + table fingerprint +
    // col + n_rows.
    (buf.len() + 4 + entry.name.len() + 8 + 8 + 8 + 8) as u64 + TIER_RECORD_OVERHEAD
}

/// Move `key` to the most-recently-used (back) position of a recency queue.
/// Linear in the queue, but the queue is bounded by the cache capacity and
/// every caller already holds the cache lock on a cold path.
fn touch(order: &mut VecDeque<u64>, key: u64) {
    if let Some(pos) = order.iter().position(|&k| k == key) {
        order.remove(pos);
        order.push_back(key);
    }
}

/// A thread-safe fingerprint-keyed cache of per-column cleaning artifacts,
/// bounded to `capacity` distinct column contents. Eviction is
/// least-recently-used: lookup hits and re-inserts refresh an entry's
/// position, so a fingerprint that is hit on every batch outlives any
/// number of cold insertions.
pub struct ProfileCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl Default for ProfileCache {
    fn default() -> Self {
        ProfileCache::new()
    }
}

impl ProfileCache {
    /// An empty cache with the default capacity.
    pub fn new() -> ProfileCache {
        ProfileCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// An empty cache bounded to `capacity` entries (min 1).
    pub fn with_capacity(capacity: usize) -> ProfileCache {
        ProfileCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Classifies the reusable layer for `column` at index `col` of a table
    /// with fingerprint `table_fingerprint`, updating telemetry.
    pub fn lookup(&self, column: &Column, col: usize, table_fingerprint: u64) -> CacheLookup {
        let fingerprint = column.fingerprint();
        let mut inner = self.inner.lock().expect("cache poisoned");
        if let Some(entry) = inner.by_fingerprint.get(&fingerprint) {
            if entry.col == col {
                let entry = Arc::clone(entry);
                touch(&mut inner.order, fingerprint);
                if entry.table_fingerprint == table_fingerprint {
                    inner.stats.report_hits += 1;
                    return CacheLookup::Report(entry);
                }
                inner.stats.analysis_hits += 1;
                return CacheLookup::Analysis(entry);
            }
        }
        if let Some(entry) = inner.by_name.get(column.name()) {
            if entry.col == col
                && entry.n_rows < column.len()
                && column.fingerprint_prefix(entry.n_rows) == entry.fingerprint
            {
                let entry = Arc::clone(entry);
                touch(&mut inner.order, entry.fingerprint);
                inner.stats.append_hits += 1;
                return CacheLookup::Append(entry);
            }
        }
        inner.stats.misses += 1;
        CacheLookup::Miss
    }

    /// Stores the artifacts learned for `column`.
    pub fn insert(
        &self,
        column: &Column,
        col: usize,
        table_fingerprint: u64,
        analysis: Arc<ColumnAnalysis>,
        report: ColumnReport,
    ) {
        self.insert_entry(Arc::new(CachedColumn {
            name: column.name().to_string(),
            fingerprint: column.fingerprint(),
            table_fingerprint,
            col,
            n_rows: column.len(),
            analysis,
            report,
        }));
    }

    /// Stores a prebuilt entry — [`ProfileCache::insert`] and the artifact
    /// store's load path share this (the store carries the identity fields
    /// explicitly, with no `Column` to recompute them from).
    pub fn insert_entry(&self, entry: Arc<CachedColumn>) {
        let size = column_entry_bytes(&entry);
        let mut guard = self.inner.lock().expect("cache poisoned");
        let inner = &mut *guard;
        Inner::set_tier_bytes(
            &mut inner.col_bytes,
            &mut inner.bytes,
            entry.fingerprint,
            size,
        );
        if inner
            .by_fingerprint
            .insert(entry.fingerprint, Arc::clone(&entry))
            .is_none()
        {
            inner.order.push_back(entry.fingerprint);
        } else {
            touch(&mut inner.order, entry.fingerprint);
        }
        inner.by_name.insert(entry.name.clone(), entry);
        while inner.by_fingerprint.len() > self.capacity {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            if let Some(evicted) = inner.by_fingerprint.remove(&oldest) {
                // Drop the name index too if it still points at this entry.
                inner.by_name.retain(|_, kept| !Arc::ptr_eq(kept, &evicted));
                Inner::drop_tier_bytes(&mut inner.col_bytes, &mut inner.bytes, oldest);
                inner.stats.report_evictions += 1;
            }
        }
    }

    /// The session layer: the `FeatureSet` previously generated for a table
    /// with this fingerprint, if cached. Callers seed a fresh
    /// `AnalysisSession` over identical table content with it, skipping the
    /// one-per-table feature generation entirely.
    pub fn lookup_session(&self, table_fingerprint: u64) -> Option<Arc<FeatureSet>> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        let hit = inner.by_table.get(&table_fingerprint).cloned();
        if hit.is_some() {
            touch(&mut inner.table_order, table_fingerprint);
            inner.stats.session_hits += 1;
        }
        hit
    }

    /// Stores a session's generated `FeatureSet` under its table
    /// fingerprint (LRU-bounded like the column layers).
    pub fn insert_session(&self, table_fingerprint: u64, features: Arc<FeatureSet>) {
        let size = {
            let mut buf = Vec::new();
            persist::encode_feature_set(&features, &mut buf);
            buf.len() as u64 + TIER_RECORD_OVERHEAD
        };
        let mut guard = self.inner.lock().expect("cache poisoned");
        let inner = &mut *guard;
        Inner::set_tier_bytes(
            &mut inner.session_bytes,
            &mut inner.bytes,
            table_fingerprint,
            size,
        );
        if inner.by_table.insert(table_fingerprint, features).is_none() {
            inner.table_order.push_back(table_fingerprint);
        } else {
            touch(&mut inner.table_order, table_fingerprint);
        }
        while inner.by_table.len() > self.capacity {
            let Some(oldest) = inner.table_order.pop_front() else {
                break;
            };
            if inner.by_table.remove(&oldest).is_some() {
                Inner::drop_tier_bytes(&mut inner.session_bytes, &mut inner.bytes, oldest);
                inner.stats.session_evictions += 1;
            }
        }
    }

    /// Number of cached table-level sessions (feature sets).
    pub fn n_sessions(&self) -> usize {
        self.inner.lock().expect("cache poisoned").by_table.len()
    }

    /// Removes and returns the stored snapshot under `key` *iff* it can be
    /// resumed on `table` (same headers, prefix content unchanged, rows
    /// only appended). Validation happens under the cache lock, before the
    /// take, so a returned snapshot is guaranteed to resume. Non-resumable
    /// snapshots stay put — the stream they belong to may still come back.
    pub fn take_resumable_snapshot(&self, key: u64, table: &Table) -> Option<SessionSnapshot> {
        let mut guard = self.inner.lock().expect("cache poisoned");
        let inner = &mut *guard;
        if !inner
            .snapshots
            .get(&key)
            .is_some_and(|s| s.resumable_for(table))
        {
            return None;
        }
        inner.stats.session_resumes += 1;
        inner.snapshot_order.retain(|&k| k != key);
        Inner::drop_tier_bytes(&mut inner.snapshot_bytes, &mut inner.bytes, key);
        inner.snapshots.remove(&key)
    }

    /// Stores a detached session under its table's header key, replacing
    /// any prior snapshot for that shape (LRU-bounded across shapes: a
    /// stream that stores on every chunk keeps refreshing its slot).
    pub fn insert_snapshot(&self, key: u64, snapshot: SessionSnapshot) {
        let size = {
            let mut buf = Vec::new();
            persist::encode_snapshot(&snapshot, &mut buf);
            buf.len() as u64 + TIER_RECORD_OVERHEAD
        };
        let mut guard = self.inner.lock().expect("cache poisoned");
        let inner = &mut *guard;
        Inner::set_tier_bytes(&mut inner.snapshot_bytes, &mut inner.bytes, key, size);
        if inner.snapshots.insert(key, snapshot).is_none() {
            inner.snapshot_order.push_back(key);
        } else {
            touch(&mut inner.snapshot_order, key);
        }
        while inner.snapshots.len() > self.capacity {
            let Some(oldest) = inner.snapshot_order.pop_front() else {
                break;
            };
            if inner.snapshots.remove(&oldest).is_some() {
                Inner::drop_tier_bytes(&mut inner.snapshot_bytes, &mut inner.bytes, oldest);
                inner.stats.snapshot_evictions += 1;
            }
        }
    }

    /// Number of stored session snapshots (one per table header shape).
    pub fn n_snapshots(&self) -> usize {
        self.inner.lock().expect("cache poisoned").snapshots.len()
    }

    /// Records that an append hit was abandoned (the appended rows did not
    /// fit the prior language and the engine re-profiled from scratch).
    pub fn record_append_fallback(&self) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.stats.append_hits = inner.stats.append_hits.saturating_sub(1);
        inner.stats.append_fallbacks += 1;
        inner.stats.misses += 1;
    }

    /// Cumulative telemetry. The `bytes` field is a point-in-time gauge of
    /// current occupancy, not a counter.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache poisoned");
        let mut stats = inner.stats;
        stats.bytes = inner.bytes;
        stats
    }

    /// Number of distinct cached column contents.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("cache poisoned")
            .by_fingerprint
            .len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and telemetry.
    pub fn clear(&self) {
        *self.inner.lock().expect("cache poisoned") = Inner::default();
    }

    /// Walks every cached artifact in least-recently-used-first order (per
    /// tier: columns, then sessions, then snapshots) under the cache lock.
    /// The artifact store's flush path writes records in this order, so a
    /// reloaded store reproduces the same recency order through plain
    /// re-insertion (each insert pushes to the most-recent end).
    pub fn export(&self, mut f: impl FnMut(Artifact<'_>)) {
        let inner = self.inner.lock().expect("cache poisoned");
        for key in &inner.order {
            if let Some(entry) = inner.by_fingerprint.get(key) {
                f(Artifact::Column(entry));
            }
        }
        for key in &inner.table_order {
            if let Some(features) = inner.by_table.get(key) {
                f(Artifact::Session {
                    table_fingerprint: *key,
                    features,
                });
            }
        }
        for key in &inner.snapshot_order {
            if let Some(snapshot) = inner.snapshots.get(key) {
                f(Artifact::Snapshot {
                    header_key: *key,
                    snapshot,
                });
            }
        }
    }
}

/// One cached artifact, borrowed out of the cache for export (the durable
/// store serializes these into its on-disk records).
pub enum Artifact<'a> {
    /// Report-tier entry: identity fields plus analysis and report.
    Column(&'a CachedColumn),
    /// Session-tier entry: a table's generated feature set.
    Session {
        table_fingerprint: u64,
        features: &'a FeatureSet,
    },
    /// Snapshot-tier entry: the latest detached session for a header shape.
    Snapshot {
        header_key: u64,
        snapshot: &'a SessionSnapshot,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_core::DataVinci;
    use datavinci_table::Table;

    fn analyze(table: &Table, col: usize) -> (Arc<ColumnAnalysis>, ColumnReport) {
        let dv = DataVinci::new();
        let analysis = dv.analyze_column(table, col);
        let report = dv.repair_analysis(table, &analysis);
        (Arc::new(analysis), report)
    }

    fn table(values: &[&str]) -> Table {
        Table::new(vec![Column::from_texts("ids", values)])
    }

    #[test]
    fn miss_then_report_hit() {
        let cache = ProfileCache::new();
        let t = table(&["a-1", "a-2", "a9"]);
        let col = t.column(0).unwrap();
        assert!(matches!(
            cache.lookup(col, 0, t.fingerprint()),
            CacheLookup::Miss
        ));
        let (analysis, report) = analyze(&t, 0);
        cache.insert(col, 0, t.fingerprint(), analysis, report);
        assert!(matches!(
            cache.lookup(col, 0, t.fingerprint()),
            CacheLookup::Report(_)
        ));
        let stats = cache.stats();
        assert_eq!(stats.report_hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits(), 1);
        assert_eq!(stats.lookups(), 2);
    }

    #[test]
    fn same_column_in_different_table_is_analysis_hit() {
        let cache = ProfileCache::new();
        let t1 = table(&["a-1", "a-2", "a9"]);
        let (analysis, report) = analyze(&t1, 0);
        cache.insert(t1.column(0).unwrap(), 0, t1.fingerprint(), analysis, report);

        // Same column content, extra sibling column → different table print.
        let t2 = Table::new(vec![
            Column::from_texts("ids", &["a-1", "a-2", "a9"]),
            Column::from_texts("other", &["x", "y", "z"]),
        ]);
        assert_ne!(t1.fingerprint(), t2.fingerprint());
        assert!(matches!(
            cache.lookup(t2.column(0).unwrap(), 0, t2.fingerprint()),
            CacheLookup::Analysis(_)
        ));
        assert_eq!(cache.stats().analysis_hits, 1);
    }

    #[test]
    fn appended_column_is_append_hit() {
        let cache = ProfileCache::new();
        let t1 = table(&["a-1", "a-2", "a-3"]);
        let (analysis, report) = analyze(&t1, 0);
        cache.insert(t1.column(0).unwrap(), 0, t1.fingerprint(), analysis, report);

        let t2 = table(&["a-1", "a-2", "a-3", "a-4", "a5"]);
        match cache.lookup(t2.column(0).unwrap(), 0, t2.fingerprint()) {
            CacheLookup::Append(entry) => assert_eq!(entry.n_rows, 3),
            other => panic!("expected append hit, got {other:?}"),
        }
        // A *changed* (not appended) column misses.
        let t3 = table(&["a-1", "a-X", "a-3", "a-4"]);
        assert!(matches!(
            cache.lookup(t3.column(0).unwrap(), 0, t3.fingerprint()),
            CacheLookup::Miss
        ));
        assert_eq!(cache.stats().append_hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        let cache = ProfileCache::with_capacity(2);
        let tables: Vec<Table> = (0..3)
            .map(|i| table(&[&format!("a-{i}1"), &format!("a-{i}2")]))
            .collect();
        for t in &tables {
            let (analysis, report) = analyze(t, 0);
            cache.insert(t.column(0).unwrap(), 0, t.fingerprint(), analysis, report);
        }
        assert_eq!(cache.len(), 2);
        // Nothing was ever reused, so recency order equals insertion order:
        // the first insertion was evicted and the later two survive.
        assert!(matches!(
            cache.lookup(tables[0].column(0).unwrap(), 0, tables[0].fingerprint()),
            CacheLookup::Miss
        ));
        assert!(matches!(
            cache.lookup(tables[2].column(0).unwrap(), 0, tables[2].fingerprint()),
            CacheLookup::Report(_)
        ));
    }

    #[test]
    fn append_fallback_moves_hit_to_miss() {
        let cache = ProfileCache::new();
        let t1 = table(&["a-1", "a-2", "a-3"]);
        let (analysis, report) = analyze(&t1, 0);
        cache.insert(t1.column(0).unwrap(), 0, t1.fingerprint(), analysis, report);
        let t2 = table(&["a-1", "a-2", "a-3", "XYZ", "QRS"]);
        assert!(matches!(
            cache.lookup(t2.column(0).unwrap(), 0, t2.fingerprint()),
            CacheLookup::Append(_)
        ));
        cache.record_append_fallback();
        let stats = cache.stats();
        assert_eq!(stats.append_hits, 0);
        assert_eq!(stats.append_fallbacks, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn session_layer_stores_and_evicts_feature_sets() {
        use datavinci_core::FeatureSet;
        let cache = ProfileCache::with_capacity(2);
        let t = table(&["a-1", "a-2"]);
        let fp = t.fingerprint();
        assert!(cache.lookup_session(fp).is_none());
        assert_eq!(cache.stats().session_hits, 0);
        let features = Arc::new(FeatureSet::generate(&t));
        cache.insert_session(fp, Arc::clone(&features));
        let hit = cache.lookup_session(fp).expect("session hit");
        assert!(Arc::ptr_eq(&hit, &features));
        assert_eq!(cache.stats().session_hits, 1);
        // Eviction beyond capacity drops the least recently used key.
        cache.insert_session(fp ^ 1, Arc::clone(&features));
        cache.insert_session(fp ^ 2, Arc::clone(&features));
        assert_eq!(cache.n_sessions(), 2);
        assert!(cache.lookup_session(fp).is_none());
    }

    #[test]
    fn continuously_hit_column_outlives_capacity_cold_insertions() {
        let capacity = 4;
        let cache = ProfileCache::with_capacity(capacity);
        let hot = table(&["h-1", "h-2"]);
        let hot_col = hot.column(0).unwrap();
        let (analysis, report) = analyze(&hot, 0);
        cache.insert(hot_col, 0, hot.fingerprint(), analysis, report);
        // Twice `capacity` cold insertions, the hot entry hit before each:
        // under FIFO the hot entry would die at its original slot; with
        // touch-on-use it must survive the whole churn.
        for i in 0..(2 * capacity) {
            assert!(
                matches!(
                    cache.lookup(hot_col, 0, hot.fingerprint()),
                    CacheLookup::Report(_)
                ),
                "hot entry evicted after {i} cold insertions"
            );
            let cold = table(&[&format!("c-{i}1"), &format!("c-{i}2")]);
            let (analysis, report) = analyze(&cold, 0);
            cache.insert(
                cold.column(0).unwrap(),
                0,
                cold.fingerprint(),
                analysis,
                report,
            );
        }
        assert!(matches!(
            cache.lookup(hot_col, 0, hot.fingerprint()),
            CacheLookup::Report(_)
        ));
        assert_eq!(cache.len(), capacity);
    }

    #[test]
    fn continuously_hit_session_outlives_capacity_cold_insertions() {
        use datavinci_core::FeatureSet;
        let capacity = 2;
        let cache = ProfileCache::with_capacity(capacity);
        let t = table(&["a-1", "a-2"]);
        let features = Arc::new(FeatureSet::generate(&t));
        cache.insert_session(7, Arc::clone(&features));
        for i in 0..(3 * capacity as u64) {
            assert!(cache.lookup_session(7).is_some(), "evicted at round {i}");
            cache.insert_session(100 + i, Arc::clone(&features));
        }
        assert!(cache.lookup_session(7).is_some());
        assert_eq!(cache.n_sessions(), capacity);
    }

    #[test]
    fn reinserted_snapshot_refreshes_its_recency_slot() {
        let dv = DataVinci::new();
        let t = table(&["a-1", "a-2"]);
        let snap = || dv.session(&t).into_snapshot();
        let cache = ProfileCache::with_capacity(2);
        cache.insert_snapshot(1, snap());
        cache.insert_snapshot(2, snap());
        // Re-storing shape 1 (what a live stream does every chunk) makes
        // shape 2 the eviction victim when shape 3 arrives.
        cache.insert_snapshot(1, snap());
        cache.insert_snapshot(3, snap());
        assert_eq!(cache.n_snapshots(), 2);
        assert!(cache.take_resumable_snapshot(2, &t).is_none());
        assert!(cache.take_resumable_snapshot(1, &t).is_some());
    }

    #[test]
    fn byte_gauge_tracks_inserts_and_evictions_per_tier() {
        let cache = ProfileCache::with_capacity(2);
        assert_eq!(cache.stats().bytes, 0);
        let tables: Vec<Table> = (0..3)
            .map(|i| table(&[&format!("a-{i}1"), &format!("a-{i}2")]))
            .collect();
        let mut after_first = 0;
        for (i, t) in tables.iter().enumerate() {
            let (analysis, report) = analyze(t, 0);
            cache.insert(t.column(0).unwrap(), 0, t.fingerprint(), analysis, report);
            let bytes = cache.stats().bytes;
            assert!(bytes > 0, "gauge empty after insert {i}");
            if i == 0 {
                after_first = bytes;
            }
        }
        // Third insert evicted the first entry: occupancy stays at two
        // entries' worth, and the eviction counter records it.
        let stats = cache.stats();
        assert_eq!(stats.report_evictions, 1);
        assert_eq!(stats.session_evictions, 0);
        assert_eq!(stats.snapshot_evictions, 0);
        assert!(stats.bytes < 3 * after_first);

        // Session tier: two inserts fit, the third evicts, and dropping all
        // report-tier state is not involved.
        let features = Arc::new(datavinci_core::FeatureSet::generate(&tables[0]));
        for key in [10, 11, 12] {
            cache.insert_session(key, Arc::clone(&features));
        }
        assert_eq!(cache.stats().session_evictions, 1);

        // Snapshot tier: taking a snapshot back out debits the gauge.
        let dv = DataVinci::new();
        let before_snapshot = cache.stats().bytes;
        cache.insert_snapshot(77, dv.session(&tables[0]).into_snapshot());
        assert!(cache.stats().bytes > before_snapshot);
        assert!(cache.take_resumable_snapshot(77, &tables[0]).is_some());
        assert_eq!(cache.stats().bytes, before_snapshot);
    }

    #[test]
    fn export_walks_all_tiers_lru_first() {
        let cache = ProfileCache::new();
        let t1 = table(&["a-1", "a-2"]);
        let t2 = table(&["b-1", "b-2"]);
        for t in [&t1, &t2] {
            let (analysis, report) = analyze(t, 0);
            cache.insert(t.column(0).unwrap(), 0, t.fingerprint(), analysis, report);
        }
        // Touch t1 so it becomes most-recent: export must yield t2 first.
        assert!(matches!(
            cache.lookup(t1.column(0).unwrap(), 0, t1.fingerprint()),
            CacheLookup::Report(_)
        ));
        let features = Arc::new(datavinci_core::FeatureSet::generate(&t1));
        cache.insert_session(5, Arc::clone(&features));
        let dv = DataVinci::new();
        cache.insert_snapshot(9, dv.session(&t1).into_snapshot());

        let mut kinds = Vec::new();
        let mut column_prints = Vec::new();
        cache.export(|artifact| match artifact {
            Artifact::Column(entry) => {
                kinds.push("column");
                column_prints.push(entry.fingerprint);
            }
            Artifact::Session {
                table_fingerprint, ..
            } => {
                kinds.push("session");
                assert_eq!(table_fingerprint, 5);
            }
            Artifact::Snapshot { header_key, .. } => {
                kinds.push("snapshot");
                assert_eq!(header_key, 9);
            }
        });
        assert_eq!(kinds, ["column", "column", "session", "snapshot"]);
        assert_eq!(
            column_prints,
            [
                t2.column(0).unwrap().fingerprint(),
                t1.column(0).unwrap().fingerprint()
            ]
        );
    }

    #[test]
    fn clear_resets_entries_and_stats() {
        let cache = ProfileCache::new();
        let t = table(&["a-1", "a-2"]);
        let (analysis, report) = analyze(&t, 0);
        cache.insert(t.column(0).unwrap(), 0, t.fingerprint(), analysis, report);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
