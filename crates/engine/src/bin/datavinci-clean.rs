//! `datavinci-clean`: CSV in → repaired CSV + JSON report out.
//!
//! ```text
//! datavinci-clean input.csv [-o out.csv] [--report report.json]
//!                 [--workers N] [--semantics full|limited|none]
//!                 [--strategy planner|rowwise] [--types] [--no-cache]
//!                 [--quiet]
//! datavinci-clean --follow [input.csv|-] [--chunk-rows N] [--window-rows N]
//!                 [-o out.csv] ...
//! ```
//!
//! Reads a headered CSV, runs the parallel cleaning engine over every
//! sufficiently-textual column, writes the repaired CSV (default:
//! `<input>.cleaned.csv`) and, on request, a JSON report with per-column
//! detections, repairs, timing, cache telemetry, and the table session's
//! reuse stats (feature generations, row-vector sharing, mask-memo hits).
//! `--types` additionally reports each cleaned column's dominant semantic
//! type, detected once per column through the session's type memo.
//!
//! `--follow` switches to **streaming** mode: input (a file, or stdin when
//! the input is `-` or omitted) is consumed in chunks of `--chunk-rows`
//! rows, each chunk's repaired rows are emitted as soon as they are cleaned
//! (to `-o` or stdout), and per-chunk repairs are echoed to stderr. The
//! whole file is never held in memory; `--window-rows` additionally bounds
//! how many already-emitted rows are retained as cleaning context. Parse
//! problems are reported with their line number.

use std::io::{Read, Write};
use std::process::ExitCode;

use datavinci_core::{DataVinci, DataVinciConfig, RepairStrategy, SemanticMode, TypeDetection};
use datavinci_engine::json::Json;
use datavinci_engine::{
    session_stats_json, Engine, EngineConfig, EngineReport, StreamCleaner, StreamConfig,
};
use datavinci_table::{io, CsvChunkReader, Table};

struct Args {
    input: String,
    output: Option<String>,
    report: Option<String>,
    workers: usize,
    semantics: SemanticMode,
    strategy: RepairStrategy,
    types: bool,
    cache: bool,
    quiet: bool,
    follow: bool,
    chunk_rows: usize,
    window_rows: usize,
}

const USAGE: &str = "usage: datavinci-clean INPUT.csv [-o OUT.csv] [--report REPORT.json] \
                     [--workers N] [--semantics full|limited|none] \
                     [--strategy planner|rowwise] [--types] [--no-cache] [--quiet]\n\
       datavinci-clean --follow [INPUT.csv|-] [--chunk-rows N] [--window-rows N] \
                     [-o OUT.csv] [--workers N] [--semantics ...] [--strategy ...] [--quiet]";

/// `Ok(None)` means help was requested (print usage, exit 0).
fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut args = Args {
        input: String::new(),
        output: None,
        report: None,
        workers: 0,
        semantics: SemanticMode::Full,
        strategy: RepairStrategy::Planner,
        types: false,
        cache: true,
        quiet: false,
        follow: false,
        chunk_rows: 256,
        window_rows: 0,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-o" | "--output" => args.output = Some(value(arg)?),
            "--report" => args.report = Some(value(arg)?),
            "--workers" => {
                args.workers = value(arg)?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?
            }
            "--semantics" => {
                args.semantics = match value(arg)?.as_str() {
                    "full" => SemanticMode::Full,
                    "limited" => SemanticMode::Limited,
                    "none" => SemanticMode::None,
                    other => return Err(format!("unknown --semantics mode: {other}")),
                }
            }
            "--strategy" => {
                args.strategy = match value(arg)?.as_str() {
                    "planner" => RepairStrategy::Planner,
                    "rowwise" => RepairStrategy::RowWise,
                    other => return Err(format!("unknown --strategy: {other}")),
                }
            }
            "--types" => args.types = true,
            "--no-cache" => args.cache = false,
            "--quiet" | "-q" => args.quiet = true,
            "--follow" => args.follow = true,
            "--chunk-rows" => {
                args.chunk_rows = value(arg)?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--chunk-rows needs a positive integer".to_string())?
            }
            "--window-rows" => {
                args.window_rows = value(arg)?
                    .parse()
                    .map_err(|_| "--window-rows needs an integer".to_string())?
            }
            "--help" | "-h" => return Ok(None),
            "-" if args.input.is_empty() => args.input = "-".to_string(),
            other if other.starts_with('-') => return Err(format!("unknown flag: {other}")),
            other if args.input.is_empty() => args.input = other.to_string(),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if args.input.is_empty() {
        if args.follow {
            args.input = "-".to_string();
        } else {
            return Err("missing INPUT.csv".to_string());
        }
    }
    if args.input == "-" && !args.follow {
        return Err("stdin input requires --follow".to_string());
    }
    Ok(Some(args))
}

fn report_json(
    table: &Table,
    report: &EngineReport,
    engine: &Engine,
    wall: std::time::Duration,
    types: &[Option<TypeDetection>],
) -> Json {
    let columns = report
        .columns
        .iter()
        .zip(types)
        .map(|(c, detected)| {
            let name = table
                .column(c.report.col)
                .map(|col| col.name().to_string())
                .unwrap_or_default();
            let mut obj = Json::obj()
                .field("col", Json::Int(c.report.col as i64))
                .field("name", Json::str(name))
                .field("n_rows", Json::Int(c.report.n_rows as i64))
                .field(
                    "significant_patterns",
                    Json::Arr(
                        c.report
                            .significant_patterns
                            .iter()
                            .map(Json::str)
                            .collect(),
                    ),
                )
                .field("n_detections", Json::Int(c.report.detections.len() as i64))
                .field(
                    "repairs",
                    Json::Arr(
                        c.report
                            .repairs
                            .iter()
                            .map(|r| {
                                Json::obj()
                                    .field("row", Json::Int(r.row as i64))
                                    .field("original", Json::str(&r.original))
                                    .field("repaired", Json::str(&r.repaired))
                            })
                            .collect(),
                    ),
                )
                .field("cache", Json::str(c.cache.label()))
                .field("elapsed_ms", Json::Num(c.elapsed.as_secs_f64() * 1000.0));
            if let Some(d) = detected {
                obj = obj
                    .field("semantic_type", Json::str(d.semantic_type.name()))
                    .field("type_confidence", Json::Num(d.confidence));
            }
            obj
        })
        .collect();

    let mut root = Json::obj()
        .field("workers", Json::Int(engine.workers() as i64))
        .field("n_rows", Json::Int(table.n_rows() as i64))
        .field("n_cols", Json::Int(table.n_cols() as i64))
        .field("n_detections", Json::Int(report.n_detections() as i64))
        .field("n_repairs", Json::Int(report.n_repairs() as i64))
        .field("elapsed_ms", Json::Num(wall.as_secs_f64() * 1000.0))
        .field("session", session_stats_json(&report.session))
        .field("columns", Json::Arr(columns));
    if let Some(stats) = engine.cache_stats() {
        root = root.field("cache", stats.to_json());
    }
    root
}

/// Streaming mode: chunked ingestion → per-chunk cleaning → incremental
/// emission. Repaired CSV goes to `-o` (or stdout); repairs echo to stderr.
fn run_follow(args: &Args) -> Result<(), String> {
    let mut input: Box<dyn Read> = if args.input == "-" {
        Box::new(std::io::stdin().lock())
    } else {
        Box::new(
            std::fs::File::open(&args.input)
                .map_err(|e| format!("cannot read {}: {e}", args.input))?,
        )
    };
    let mut output: Box<dyn Write> = match &args.output {
        Some(path) if path != "-" => {
            Box::new(std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?)
        }
        _ => Box::new(std::io::stdout().lock()),
    };

    let mut dv = Some(DataVinci::with_config(DataVinciConfig {
        semantics: args.semantics,
        repair_strategy: args.strategy,
        ..DataVinciConfig::default()
    }));
    let stream_cfg = StreamConfig {
        workers: args.workers,
        window_rows: args.window_rows,
    };

    let mut reader = CsvChunkReader::new();
    let mut cleaner: Option<StreamCleaner> = None;
    let mut pending: Vec<Vec<String>> = Vec::new();
    let mut buf = vec![0u8; 64 * 1024];
    let started = std::time::Instant::now();

    let emit = |cleaner: &mut Option<StreamCleaner>,
                pending: &mut Vec<Vec<String>>,
                output: &mut Box<dyn Write>|
     -> Result<(), String> {
        let cleaner = cleaner.as_mut().expect("header before rows");
        let outcome = cleaner.push_rows(pending);
        pending.clear();
        output
            .write_all(outcome.csv.as_bytes())
            .and_then(|()| output.flush())
            .map_err(|e| format!("cannot write output: {e}"))?;
        if !args.quiet {
            for r in &outcome.repairs {
                eprintln!(
                    "row {}, col {}: {:?} -> {:?}",
                    r.row, r.col, r.original, r.repaired
                );
            }
        }
        Ok(())
    };

    loop {
        let n = input
            .read(&mut buf)
            .map_err(|e| format!("cannot read {}: {e}", args.input))?;
        let rows = if n == 0 {
            reader.finish()
        } else {
            reader.push(&buf[..n])
        }
        .map_err(|e| format!("{}: {e}", args.input))?;

        if cleaner.is_none() {
            if let Some(header) = reader.header() {
                let c =
                    StreamCleaner::with_system(dv.take().expect("one header"), header, stream_cfg);
                output
                    .write_all(c.csv_header().as_bytes())
                    .map_err(|e| format!("cannot write output: {e}"))?;
                cleaner = Some(c);
            }
        }
        pending.extend(rows);
        while pending.len() >= args.chunk_rows {
            let rest = pending.split_off(args.chunk_rows);
            let mut chunk = std::mem::replace(&mut pending, rest);
            emit(&mut cleaner, &mut chunk, &mut output)?;
        }
        if n == 0 {
            if !pending.is_empty() {
                emit(&mut cleaner, &mut pending, &mut output)?;
            }
            break;
        }
    }
    let Some(cleaner) = cleaner else {
        return Err(format!("{}: missing header record", args.input));
    };

    if !args.quiet {
        eprintln!(
            "{}: streamed {} rows · {} repairs · {} window compaction(s) · {:.1} ms",
            args.input,
            cleaner.n_rows(),
            cleaner.n_repairs(),
            cleaner.compactions(),
            started.elapsed().as_secs_f64() * 1000.0,
        );
        if let Some(stats) = cleaner.engine().cache_stats() {
            eprintln!(
                "cache: {} session resume(s) · {} append hits · {} append fallbacks · {} misses",
                stats.session_resumes, stats.append_hits, stats.append_fallbacks, stats.misses,
            );
        }
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read {}: {e}", args.input))?;
    let table = io::parse_csv(&text).map_err(|e| format!("{}: {e}", args.input))?;

    let dv = DataVinci::with_config(DataVinciConfig {
        semantics: args.semantics,
        repair_strategy: args.strategy,
        ..DataVinciConfig::default()
    });
    let engine = Engine::with_system(
        dv,
        EngineConfig {
            workers: args.workers,
            cache: args.cache,
            ..EngineConfig::default()
        },
    );
    let started = std::time::Instant::now();
    let report = engine.clean_table(&table);
    let wall = started.elapsed();
    let repaired = Engine::apply(&table, &report.table_report());

    // --types: one detection per cleaned column through the session's
    // column-type memo (the pool is shared, the gazetteer sweep runs once
    // per column even though the JSON and console both read the verdict).
    let types: Vec<Option<TypeDetection>> = if args.types {
        let dv = engine.system();
        let session = dv.session(&table);
        report
            .columns
            .iter()
            .map(|c| dv.column_type_in(&session, c.report.col, 0.5))
            .collect()
    } else {
        vec![None; report.columns.len()]
    };

    let out_path = args.output.clone().unwrap_or_else(|| {
        // Strip one `.csv` suffix at most: `data.csv.csv` becomes
        // `data.csv.cleaned.csv`, an extensionless `data` becomes
        // `data.cleaned.csv`.
        match args.input.strip_suffix(".csv") {
            Some(stem) => format!("{stem}.cleaned.csv"),
            None => format!("{}.cleaned.csv", args.input),
        }
    });
    std::fs::write(&out_path, io::to_csv(&repaired))
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;

    if let Some(report_path) = &args.report {
        let json = report_json(&table, &report, &engine, wall, &types).render_pretty();
        std::fs::write(report_path, json)
            .map_err(|e| format!("cannot write {report_path}: {e}"))?;
    }

    if !args.quiet {
        println!(
            "{}: {} rows × {} cols · {} workers · {} detections · {} repairs · {:.1} ms",
            args.input,
            table.n_rows(),
            table.n_cols(),
            engine.workers(),
            report.n_detections(),
            report.n_repairs(),
            wall.as_secs_f64() * 1000.0,
        );
        for (c, detected) in report.columns.iter().zip(&types) {
            let name = table
                .column(c.report.col)
                .map(|col| col.name().to_string())
                .unwrap_or_default();
            if let Some(d) = detected {
                println!(
                    "  {name}: semantic type {} ({:.0}% support)",
                    d.semantic_type.name(),
                    d.confidence * 100.0
                );
            }
            for r in &c.report.repairs {
                println!("  {name}[{}]: {:?} -> {:?}", r.row, r.original, r.repaired);
            }
        }
        let s = &report.session;
        println!(
            "session: {} feature generation(s) · {} row vectors computed, {} shared · \
             {}/{} distinct rows · mask memo {} hits / {} misses",
            s.feature_generations,
            s.feature_rows_computed,
            s.feature_row_hits,
            s.distinct_rows,
            s.table_rows,
            s.mask_cache_hits,
            s.mask_cache_misses,
        );
        println!("wrote {out_path}");
        if let Some(report_path) = &args.report {
            println!("wrote {report_path}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = if args.follow {
        run_follow(&args)
    } else {
        run(&args)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
