//! `datavinci-clean`: CSV in → repaired CSV + JSON report out.
//!
//! ```text
//! datavinci-clean input.csv [-o out.csv] [--report report.json]
//!                 [--workers N] [--semantics full|limited|none]
//!                 [--strategy planner|rowwise] [--types] [--no-cache]
//!                 [--quiet]
//! ```
//!
//! Reads a headered CSV, runs the parallel cleaning engine over every
//! sufficiently-textual column, writes the repaired CSV (default:
//! `<input>.cleaned.csv`) and, on request, a JSON report with per-column
//! detections, repairs, timing, cache telemetry, and the table session's
//! reuse stats (feature generations, row-vector sharing, mask-memo hits).
//! `--types` additionally reports each cleaned column's dominant semantic
//! type, detected once per column through the session's type memo.

use std::process::ExitCode;

use datavinci_core::{DataVinci, DataVinciConfig, RepairStrategy, SemanticMode, TypeDetection};
use datavinci_engine::json::Json;
use datavinci_engine::{session_stats_json, Engine, EngineConfig, EngineReport};
use datavinci_table::{io, Table};

struct Args {
    input: String,
    output: Option<String>,
    report: Option<String>,
    workers: usize,
    semantics: SemanticMode,
    strategy: RepairStrategy,
    types: bool,
    cache: bool,
    quiet: bool,
}

const USAGE: &str = "usage: datavinci-clean INPUT.csv [-o OUT.csv] [--report REPORT.json] \
                     [--workers N] [--semantics full|limited|none] \
                     [--strategy planner|rowwise] [--types] [--no-cache] [--quiet]";

/// `Ok(None)` means help was requested (print usage, exit 0).
fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut args = Args {
        input: String::new(),
        output: None,
        report: None,
        workers: 0,
        semantics: SemanticMode::Full,
        strategy: RepairStrategy::Planner,
        types: false,
        cache: true,
        quiet: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-o" | "--output" => args.output = Some(value(arg)?),
            "--report" => args.report = Some(value(arg)?),
            "--workers" => {
                args.workers = value(arg)?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?
            }
            "--semantics" => {
                args.semantics = match value(arg)?.as_str() {
                    "full" => SemanticMode::Full,
                    "limited" => SemanticMode::Limited,
                    "none" => SemanticMode::None,
                    other => return Err(format!("unknown --semantics mode: {other}")),
                }
            }
            "--strategy" => {
                args.strategy = match value(arg)?.as_str() {
                    "planner" => RepairStrategy::Planner,
                    "rowwise" => RepairStrategy::RowWise,
                    other => return Err(format!("unknown --strategy: {other}")),
                }
            }
            "--types" => args.types = true,
            "--no-cache" => args.cache = false,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Ok(None),
            other if other.starts_with('-') => return Err(format!("unknown flag: {other}")),
            other if args.input.is_empty() => args.input = other.to_string(),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if args.input.is_empty() {
        return Err("missing INPUT.csv".to_string());
    }
    Ok(Some(args))
}

fn report_json(
    table: &Table,
    report: &EngineReport,
    engine: &Engine,
    wall: std::time::Duration,
    types: &[Option<TypeDetection>],
) -> Json {
    let columns = report
        .columns
        .iter()
        .zip(types)
        .map(|(c, detected)| {
            let name = table
                .column(c.report.col)
                .map(|col| col.name().to_string())
                .unwrap_or_default();
            let mut obj = Json::obj()
                .field("col", Json::Int(c.report.col as i64))
                .field("name", Json::str(name))
                .field("n_rows", Json::Int(c.report.n_rows as i64))
                .field(
                    "significant_patterns",
                    Json::Arr(
                        c.report
                            .significant_patterns
                            .iter()
                            .map(Json::str)
                            .collect(),
                    ),
                )
                .field("n_detections", Json::Int(c.report.detections.len() as i64))
                .field(
                    "repairs",
                    Json::Arr(
                        c.report
                            .repairs
                            .iter()
                            .map(|r| {
                                Json::obj()
                                    .field("row", Json::Int(r.row as i64))
                                    .field("original", Json::str(&r.original))
                                    .field("repaired", Json::str(&r.repaired))
                            })
                            .collect(),
                    ),
                )
                .field("cache", Json::str(c.cache.label()))
                .field("elapsed_ms", Json::Num(c.elapsed.as_secs_f64() * 1000.0));
            if let Some(d) = detected {
                obj = obj
                    .field("semantic_type", Json::str(d.semantic_type.name()))
                    .field("type_confidence", Json::Num(d.confidence));
            }
            obj
        })
        .collect();

    let mut root = Json::obj()
        .field("workers", Json::Int(engine.workers() as i64))
        .field("n_rows", Json::Int(table.n_rows() as i64))
        .field("n_cols", Json::Int(table.n_cols() as i64))
        .field("n_detections", Json::Int(report.n_detections() as i64))
        .field("n_repairs", Json::Int(report.n_repairs() as i64))
        .field("elapsed_ms", Json::Num(wall.as_secs_f64() * 1000.0))
        .field("session", session_stats_json(&report.session))
        .field("columns", Json::Arr(columns));
    if let Some(stats) = engine.cache_stats() {
        root = root.field("cache", stats.to_json());
    }
    root
}

fn run(args: &Args) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read {}: {e}", args.input))?;
    let table = io::parse_csv(&text)
        .ok_or_else(|| format!("{}: not a rectangular headered CSV", args.input))?;

    let dv = DataVinci::with_config(DataVinciConfig {
        semantics: args.semantics,
        repair_strategy: args.strategy,
        ..DataVinciConfig::default()
    });
    let engine = Engine::with_system(
        dv,
        EngineConfig {
            workers: args.workers,
            cache: args.cache,
            ..EngineConfig::default()
        },
    );
    let started = std::time::Instant::now();
    let report = engine.clean_table(&table);
    let wall = started.elapsed();
    let repaired = Engine::apply(&table, &report.table_report());

    // --types: one detection per cleaned column through the session's
    // column-type memo (the pool is shared, the gazetteer sweep runs once
    // per column even though the JSON and console both read the verdict).
    let types: Vec<Option<TypeDetection>> = if args.types {
        let dv = engine.system();
        let session = dv.session(&table);
        report
            .columns
            .iter()
            .map(|c| dv.column_type_in(&session, c.report.col, 0.5))
            .collect()
    } else {
        vec![None; report.columns.len()]
    };

    let out_path = args
        .output
        .clone()
        .unwrap_or_else(|| format!("{}.cleaned.csv", args.input.trim_end_matches(".csv")));
    std::fs::write(&out_path, io::to_csv(&repaired))
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;

    if let Some(report_path) = &args.report {
        let json = report_json(&table, &report, &engine, wall, &types).render_pretty();
        std::fs::write(report_path, json)
            .map_err(|e| format!("cannot write {report_path}: {e}"))?;
    }

    if !args.quiet {
        println!(
            "{}: {} rows × {} cols · {} workers · {} detections · {} repairs · {:.1} ms",
            args.input,
            table.n_rows(),
            table.n_cols(),
            engine.workers(),
            report.n_detections(),
            report.n_repairs(),
            wall.as_secs_f64() * 1000.0,
        );
        for (c, detected) in report.columns.iter().zip(&types) {
            let name = table
                .column(c.report.col)
                .map(|col| col.name().to_string())
                .unwrap_or_default();
            if let Some(d) = detected {
                println!(
                    "  {name}: semantic type {} ({:.0}% support)",
                    d.semantic_type.name(),
                    d.confidence * 100.0
                );
            }
            for r in &c.report.repairs {
                println!("  {name}[{}]: {:?} -> {:?}", r.row, r.original, r.repaired);
            }
        }
        let s = &report.session;
        println!(
            "session: {} feature generation(s) · {} row vectors computed, {} shared · \
             {}/{} distinct rows · mask memo {} hits / {} misses",
            s.feature_generations,
            s.feature_rows_computed,
            s.feature_row_hits,
            s.distinct_rows,
            s.table_rows,
            s.mask_cache_hits,
            s.mask_cache_misses,
        );
        println!("wrote {out_path}");
        if let Some(report_path) = &args.report {
            println!("wrote {report_path}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
