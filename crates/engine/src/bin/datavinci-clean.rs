//! `datavinci-clean`: CSV in → repaired CSV + JSON report out.
//!
//! ```text
//! datavinci-clean input.csv [-o out.csv] [--report report.json]
//!                 [--metrics metrics.json] [--trace]
//!                 [--workers N] [--semantics full|limited|none]
//!                 [--strategy planner|rowwise|intersect] [--types] [--no-cache]
//!                 [--quiet]
//! datavinci-clean --follow [input.csv|-] [--chunk-rows N] [--window-rows N]
//!                 [-o out.csv] ...
//! ```
//!
//! Reads a headered CSV, runs the parallel cleaning engine over every
//! sufficiently-textual column, writes the repaired CSV (default:
//! `<input>.cleaned.csv`) and, on request, a JSON report with per-column
//! detections, repairs, timing, cache telemetry, and the table session's
//! reuse stats (feature generations, row-vector sharing, mask-memo hits).
//! `--types` additionally reports each cleaned column's dominant semantic
//! type, detected once per column through the session's type memo.
//!
//! `--metrics` and `--trace` switch structured telemetry on: `--metrics`
//! writes the full metrics report (span tree, counters, gauges, and a
//! latency histogram per pipeline stage) as JSON, `--trace` prints the
//! span tree with per-stage timings and percentages to stderr. Both work
//! in streaming mode too, where `--follow` additionally emits a per-chunk
//! metrics line (rows/s, window residency, compactions) on stderr.
//!
//! `--follow` switches to **streaming** mode: input (a file, or stdin when
//! the input is `-` or omitted) is consumed in chunks of `--chunk-rows`
//! rows, each chunk's repaired rows are emitted as soon as they are cleaned
//! (to `-o` or stdout), and per-chunk repairs are echoed to stderr. The
//! whole file is never held in memory; `--window-rows` additionally bounds
//! how many already-emitted rows are retained as cleaning context. Parse
//! problems are reported with their line number.

use std::io::{Read, Write};
use std::process::ExitCode;

use datavinci_core::{DataVinci, DataVinciConfig, RepairStrategy, SemanticMode, TypeDetection};
use datavinci_engine::json::Json;
use datavinci_engine::{
    serve, session_stats_json, telemetry_json, ArtifactStore, Engine, EngineConfig, EngineReport,
    StreamCleaner, StreamConfig,
};
use datavinci_table::{io, CsvChunkReader, Table};
use datavinci_telemetry::{self as telemetry, merge_span_lists, render_spans, TaskProfile};

struct Args {
    input: String,
    output: Option<String>,
    report: Option<String>,
    metrics: Option<String>,
    trace: bool,
    workers: usize,
    semantics: SemanticMode,
    strategy: RepairStrategy,
    types: bool,
    cache: bool,
    quiet: bool,
    follow: bool,
    chunk_rows: usize,
    window_rows: usize,
    store: Option<String>,
    store_budget: u64,
    tenant: String,
    connect: Option<String>,
}

impl Args {
    /// Telemetry is recorded exactly when some sink will consume it.
    fn telemetry(&self) -> bool {
        self.metrics.is_some() || self.trace
    }
}

const USAGE: &str = "usage: datavinci-clean INPUT.csv [-o OUT.csv] [--report REPORT.json] \
                     [--metrics METRICS.json] [--trace] \
                     [--workers N] [--semantics full|limited|none] \
                     [--strategy planner|rowwise|intersect] [--types] [--no-cache] [--quiet] \
                     [--store DIR] [--store-budget BYTES] [--tenant NAME]\n\
       datavinci-clean --follow [INPUT.csv|-] [--chunk-rows N] [--window-rows N] \
                     [-o OUT.csv] [--metrics METRICS.json] [--trace] [--workers N] \
                     [--semantics ...] [--strategy ...] [--quiet]\n\
       datavinci-clean --connect ADDR INPUT.csv [-o OUT.csv] [--tenant NAME] [--quiet]";

/// `Ok(None)` means help was requested (print usage, exit 0).
fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut args = Args {
        input: String::new(),
        output: None,
        report: None,
        metrics: None,
        trace: false,
        workers: 0,
        semantics: SemanticMode::Full,
        strategy: RepairStrategy::Planner,
        types: false,
        cache: true,
        quiet: false,
        follow: false,
        chunk_rows: 256,
        window_rows: 0,
        store: None,
        store_budget: datavinci_engine::DEFAULT_STORE_BUDGET,
        tenant: "default".to_string(),
        connect: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-o" | "--output" => args.output = Some(value(arg)?),
            "--report" => args.report = Some(value(arg)?),
            "--metrics" => args.metrics = Some(value(arg)?),
            "--trace" => args.trace = true,
            "--workers" => {
                args.workers = value(arg)?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?
            }
            "--semantics" => {
                args.semantics = match value(arg)?.as_str() {
                    "full" => SemanticMode::Full,
                    "limited" => SemanticMode::Limited,
                    "none" => SemanticMode::None,
                    other => return Err(format!("unknown --semantics mode: {other}")),
                }
            }
            "--strategy" => {
                args.strategy = match value(arg)?.as_str() {
                    "planner" => RepairStrategy::Planner,
                    "rowwise" => RepairStrategy::RowWise,
                    "intersect" => RepairStrategy::Intersect,
                    other => return Err(format!("unknown --strategy: {other}")),
                }
            }
            "--types" => args.types = true,
            "--no-cache" => args.cache = false,
            "--quiet" | "-q" => args.quiet = true,
            "--follow" => args.follow = true,
            "--chunk-rows" => {
                args.chunk_rows = value(arg)?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--chunk-rows needs a positive integer".to_string())?
            }
            "--window-rows" => {
                args.window_rows = value(arg)?
                    .parse()
                    .map_err(|_| "--window-rows needs an integer".to_string())?
            }
            "--store" => args.store = Some(value(arg)?),
            "--store-budget" => {
                args.store_budget = value(arg)?
                    .parse()
                    .map_err(|_| "--store-budget needs a byte count".to_string())?
            }
            "--tenant" => args.tenant = value(arg)?,
            "--connect" => args.connect = Some(value(arg)?),
            "--help" | "-h" => return Ok(None),
            "-" if args.input.is_empty() => args.input = "-".to_string(),
            other if other.starts_with('-') => return Err(format!("unknown flag: {other}")),
            other if args.input.is_empty() => args.input = other.to_string(),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if args.input.is_empty() {
        if args.follow {
            args.input = "-".to_string();
        } else {
            return Err("missing INPUT.csv".to_string());
        }
    }
    if args.input == "-" && !args.follow {
        return Err("stdin input requires --follow".to_string());
    }
    if args.store.is_some() {
        if !args.cache {
            return Err("--store requires the cache (drop --no-cache)".to_string());
        }
        if args.follow {
            return Err("--store is not supported with --follow".to_string());
        }
    }
    if args.connect.is_some() {
        // The daemon owns the engine; local-engine flags have no meaning.
        if args.follow
            || args.store.is_some()
            || args.report.is_some()
            || args.metrics.is_some()
            || args.trace
            || args.types
        {
            return Err("--connect supports only INPUT.csv, -o, --tenant, and --quiet".to_string());
        }
    }
    Ok(Some(args))
}

fn report_json(
    table: &Table,
    report: &EngineReport,
    engine: &Engine,
    wall: std::time::Duration,
    types: &[Option<TypeDetection>],
    profile: Option<&TaskProfile>,
) -> Json {
    let columns = report
        .columns
        .iter()
        .zip(types)
        .map(|(c, detected)| {
            let name = table
                .column(c.report.col)
                .map(|col| col.name().to_string())
                .unwrap_or_default();
            let mut obj = Json::obj()
                .field("col", Json::Int(c.report.col as i64))
                .field("name", Json::str(name))
                .field("n_rows", Json::Int(c.report.n_rows as i64))
                .field(
                    "significant_patterns",
                    Json::Arr(
                        c.report
                            .significant_patterns
                            .iter()
                            .map(Json::str)
                            .collect(),
                    ),
                )
                .field("n_detections", Json::Int(c.report.detections.len() as i64))
                .field(
                    "repairs",
                    Json::Arr(
                        c.report
                            .repairs
                            .iter()
                            .map(|r| {
                                Json::obj()
                                    .field("row", Json::Int(r.row as i64))
                                    .field("original", Json::str(&r.original))
                                    .field("repaired", Json::str(&r.repaired))
                            })
                            .collect(),
                    ),
                )
                .field("cache", Json::str(c.cache.label()))
                .field("elapsed_ms", Json::Num(c.elapsed.as_secs_f64() * 1000.0));
            if let Some(d) = detected {
                obj = obj
                    .field("semantic_type", Json::str(d.semantic_type.name()))
                    .field("type_confidence", Json::Num(d.confidence));
            }
            obj
        })
        .collect();

    let mut root = Json::obj()
        .field("workers", Json::Int(engine.workers() as i64))
        .field("n_rows", Json::Int(table.n_rows() as i64))
        .field("n_cols", Json::Int(table.n_cols() as i64))
        .field("n_detections", Json::Int(report.n_detections() as i64))
        .field("n_repairs", Json::Int(report.n_repairs() as i64))
        .field("elapsed_ms", Json::Num(wall.as_secs_f64() * 1000.0))
        // "session" and "cache" are deprecated aliases: the same numbers now
        // live in the unified metrics schema as session.* and engine.cache.*
        // counters (see the "telemetry" section). Kept for report consumers.
        .field("session", session_stats_json(&report.session))
        .field("columns", Json::Arr(columns));
    if let Some(stats) = engine.cache_stats() {
        root = root.field("cache", stats.to_json());
    }
    if let Some(profile) = profile {
        root = root.field("telemetry", telemetry_json(profile));
    }
    root
}

/// The `--metrics` document: the full telemetry profile plus the slowest
/// columns of the clean (the same ranking the console prints).
fn metrics_doc(profile: &TaskProfile, report: &EngineReport, table: &Table) -> Json {
    telemetry_json(profile).field(
        "slowest_columns",
        Json::Arr(
            report
                .slowest_columns(5)
                .iter()
                .map(|c| {
                    let name = table
                        .column(c.report.col)
                        .map(|col| col.name().to_string())
                        .unwrap_or_default();
                    Json::obj()
                        .field("col", Json::Int(c.report.col as i64))
                        .field("name", Json::str(name))
                        .field("cache", Json::str(c.cache.label()))
                        .field("elapsed_ms", Json::Num(c.elapsed.as_secs_f64() * 1000.0))
                })
                .collect(),
        ),
    )
}

/// Streaming mode: chunked ingestion → per-chunk cleaning → incremental
/// emission. Repaired CSV goes to `-o` (or stdout); repairs echo to stderr.
fn run_follow(args: &Args) -> Result<(), String> {
    let telemetry_on = args.telemetry();
    let mut input: Box<dyn Read> = if args.input == "-" {
        Box::new(std::io::stdin().lock())
    } else {
        Box::new(
            std::fs::File::open(&args.input)
                .map_err(|e| format!("cannot read {}: {e}", args.input))?,
        )
    };
    let mut output: Box<dyn Write> = match &args.output {
        Some(path) if path != "-" => {
            Box::new(std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?)
        }
        _ => Box::new(std::io::stdout().lock()),
    };

    let mut dv = Some(DataVinci::with_config(DataVinciConfig {
        semantics: args.semantics,
        repair_strategy: args.strategy,
        ..DataVinciConfig::default()
    }));
    let stream_cfg = StreamConfig {
        workers: args.workers,
        window_rows: args.window_rows,
        telemetry: telemetry_on,
    };

    let mut reader = CsvChunkReader::new();
    let mut cleaner: Option<StreamCleaner> = None;
    let mut pending: Vec<Vec<String>> = Vec::new();
    let mut buf = vec![0u8; 64 * 1024];
    let started = std::time::Instant::now();
    // Repairs and per-chunk metrics echo through one line-buffered stderr
    // writer, flushed once per chunk: a chunk with hundreds of repairs
    // makes hundreds of write(2) calls otherwise, and interleaves badly
    // with the consumer of the CSV stream.
    let mut err = std::io::BufWriter::new(std::io::stderr());
    // The span trees of every chunk's clean, merged (same stage names fold
    // together); cumulative counters live on the engine's registry.
    let mut spans: Vec<datavinci_telemetry::SpanNode> = Vec::new();

    let emit = |cleaner: &mut Option<StreamCleaner>,
                pending: &mut Vec<Vec<String>>,
                output: &mut Box<dyn Write>,
                err: &mut std::io::BufWriter<std::io::Stderr>,
                spans: &mut Vec<datavinci_telemetry::SpanNode>|
     -> Result<(), String> {
        let cleaner = cleaner.as_mut().expect("header before rows");
        let outcome = cleaner.push_rows(pending);
        pending.clear();
        output
            .write_all(outcome.csv.as_bytes())
            .and_then(|()| output.flush())
            .map_err(|e| format!("cannot write output: {e}"))?;
        if let Some(profile) = &outcome.report.telemetry {
            merge_span_lists(spans, &profile.spans);
        }
        if !args.quiet {
            for r in &outcome.repairs {
                writeln!(
                    err,
                    "row {}, col {}: {:?} -> {:?}",
                    r.row, r.col, r.original, r.repaired
                )
                .map_err(|e| format!("cannot write stderr: {e}"))?;
            }
            if telemetry_on {
                let secs = outcome.elapsed.as_secs_f64();
                let rows_per_s = if secs > 0.0 {
                    outcome.n_rows as f64 / secs
                } else {
                    0.0
                };
                writeln!(
                    err,
                    "chunk @{}: {} rows · {} repairs · {:.0} rows/s · {} resident · \
                     {} compaction(s) · {:.1} ms",
                    outcome.first_row,
                    outcome.n_rows,
                    outcome.repairs.len(),
                    rows_per_s,
                    cleaner.resident_rows(),
                    cleaner.compactions(),
                    secs * 1000.0,
                )
                .map_err(|e| format!("cannot write stderr: {e}"))?;
            }
            err.flush()
                .map_err(|e| format!("cannot write stderr: {e}"))?;
        }
        Ok(())
    };

    loop {
        let n = input
            .read(&mut buf)
            .map_err(|e| format!("cannot read {}: {e}", args.input))?;
        let rows = if n == 0 {
            reader.finish()
        } else {
            reader.push(&buf[..n])
        }
        .map_err(|e| format!("{}: {e}", args.input))?;

        if cleaner.is_none() {
            if let Some(header) = reader.header() {
                let c =
                    StreamCleaner::with_system(dv.take().expect("one header"), header, stream_cfg);
                output
                    .write_all(c.csv_header().as_bytes())
                    .map_err(|e| format!("cannot write output: {e}"))?;
                cleaner = Some(c);
            }
        }
        pending.extend(rows);
        while pending.len() >= args.chunk_rows {
            let rest = pending.split_off(args.chunk_rows);
            let mut chunk = std::mem::replace(&mut pending, rest);
            emit(&mut cleaner, &mut chunk, &mut output, &mut err, &mut spans)?;
        }
        if n == 0 {
            if !pending.is_empty() {
                emit(
                    &mut cleaner,
                    &mut pending,
                    &mut output,
                    &mut err,
                    &mut spans,
                )?;
            }
            break;
        }
    }
    let Some(cleaner) = cleaner else {
        return Err(format!("{}: missing header record", args.input));
    };

    if telemetry_on {
        // Per-chunk frames were absorbed into the engine's registry as the
        // stream ran; the merged span trees ride alongside.
        let profile = TaskProfile {
            spans,
            metrics: cleaner.engine().metrics().snapshot(),
        };
        if let Some(metrics_path) = &args.metrics {
            std::fs::write(metrics_path, telemetry_json(&profile).render_pretty())
                .map_err(|e| format!("cannot write {metrics_path}: {e}"))?;
        }
        if args.trace {
            write!(err, "{}", render_spans(&profile.spans))
                .map_err(|e| format!("cannot write stderr: {e}"))?;
        }
    }
    if !args.quiet {
        writeln!(
            err,
            "{}: streamed {} rows · {} repairs · {} window compaction(s) · {:.1} ms",
            args.input,
            cleaner.n_rows(),
            cleaner.n_repairs(),
            cleaner.compactions(),
            started.elapsed().as_secs_f64() * 1000.0,
        )
        .map_err(|e| format!("cannot write stderr: {e}"))?;
        if let Some(stats) = cleaner.engine().cache_stats() {
            writeln!(
                err,
                "cache: {} session resume(s) · {} append hits · {} append fallbacks · {} misses",
                stats.session_resumes, stats.append_hits, stats.append_fallbacks, stats.misses,
            )
            .map_err(|e| format!("cannot write stderr: {e}"))?;
        }
    }
    err.flush()
        .map_err(|e| format!("cannot write stderr: {e}"))?;
    Ok(())
}

/// Client mode: ship the CSV to a running `datavinci-serve` daemon and
/// write back the repaired CSV it returns. Output is byte-identical to
/// local batch mode on the same input — the daemon runs the same engine.
fn run_connect(args: &Args, address: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read {}: {e}", args.input))?;
    let started = std::time::Instant::now();
    let request = Json::obj()
        .field("op", Json::str("clean"))
        .field("tenant", Json::str(&args.tenant))
        .field("csv", Json::str(text));
    let response = serve::roundtrip(address, &request)?;
    if response.get("ok") != Some(&Json::Bool(true)) {
        let error = response
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown server error");
        return Err(format!("{address}: {error}"));
    }
    let csv = response
        .get("csv")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{address}: response has no csv field"))?;
    let out_path = args
        .output
        .clone()
        .unwrap_or_else(|| match args.input.strip_suffix(".csv") {
            Some(stem) => format!("{stem}.cleaned.csv"),
            None => format!("{}.cleaned.csv", args.input),
        });
    std::fs::write(&out_path, csv).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    if !args.quiet {
        let count = |key: &str| response.get(key).and_then(Json::as_i64).unwrap_or(0);
        println!(
            "{} via {address}: {} rows × {} cols · {} detections · {} repairs · \
             {} cache hit(s) · {:.1} ms",
            args.input,
            count("n_rows"),
            count("n_cols"),
            count("n_detections"),
            count("n_repairs"),
            count("cache_hits"),
            started.elapsed().as_secs_f64() * 1000.0,
        );
        println!("wrote {out_path}");
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    let telemetry_on = args.telemetry();
    let text = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read {}: {e}", args.input))?;
    // Ingest telemetry (parse span, byte/row counters) records into its own
    // profile; the engine's rides on the report. Merged below.
    let (parsed, ingest_profile) = telemetry::collect(telemetry_on, || io::parse_csv(&text));
    let table = parsed.map_err(|e| format!("{}: {e}", args.input))?;

    let dv = DataVinci::with_config(DataVinciConfig {
        semantics: args.semantics,
        repair_strategy: args.strategy,
        ..DataVinciConfig::default()
    });
    let mut engine = Engine::with_system(
        dv,
        EngineConfig {
            workers: args.workers,
            cache: args.cache,
            telemetry: telemetry_on,
            ..EngineConfig::default()
        },
    );
    // A failing store is a hard error, not a silent cold start: the caller
    // asked for durability and must find out when they aren't getting it.
    let mut loaded = None;
    if let Some(dir) = &args.store {
        let store = ArtifactStore::open_with_budget(dir, &args.tenant, args.store_budget)
            .map_err(|e| e.to_string())?;
        loaded = Some(engine.attach_store(store).map_err(|e| e.to_string())?);
    }
    let engine = engine;
    let started = std::time::Instant::now();
    let report = engine.clean_table(&table);
    let wall = started.elapsed();
    let flushed = engine.flush_store().map_err(|e| e.to_string())?;
    let repaired = Engine::apply(&table, &report.table_report());

    let profile = telemetry_on.then(|| {
        let mut profile = ingest_profile.unwrap_or_default();
        if let Some(engine_profile) = &report.telemetry {
            profile.merge(engine_profile);
        }
        profile
            .metrics
            .set_gauge("cli.wall_ms", wall.as_secs_f64() * 1000.0);
        profile
    });

    // --types: one detection per cleaned column through the session's
    // column-type memo (the pool is shared, the gazetteer sweep runs once
    // per column even though the JSON and console both read the verdict).
    let types: Vec<Option<TypeDetection>> = if args.types {
        let dv = engine.system();
        let session = dv.session(&table);
        report
            .columns
            .iter()
            .map(|c| dv.column_type_in(&session, c.report.col, 0.5))
            .collect()
    } else {
        vec![None; report.columns.len()]
    };

    let out_path = args.output.clone().unwrap_or_else(|| {
        // Strip one `.csv` suffix at most: `data.csv.csv` becomes
        // `data.csv.cleaned.csv`, an extensionless `data` becomes
        // `data.cleaned.csv`.
        match args.input.strip_suffix(".csv") {
            Some(stem) => format!("{stem}.cleaned.csv"),
            None => format!("{}.cleaned.csv", args.input),
        }
    });
    std::fs::write(&out_path, io::to_csv(&repaired))
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;

    if let Some(report_path) = &args.report {
        let json =
            report_json(&table, &report, &engine, wall, &types, profile.as_ref()).render_pretty();
        std::fs::write(report_path, json)
            .map_err(|e| format!("cannot write {report_path}: {e}"))?;
    }
    if let Some(metrics_path) = &args.metrics {
        let profile = profile.as_ref().expect("telemetry on when --metrics set");
        std::fs::write(
            metrics_path,
            metrics_doc(profile, &report, &table).render_pretty(),
        )
        .map_err(|e| format!("cannot write {metrics_path}: {e}"))?;
    }
    if args.trace {
        let profile = profile.as_ref().expect("telemetry on when --trace set");
        eprint!("{}", render_spans(&profile.spans));
    }

    if !args.quiet {
        println!(
            "{}: {} rows × {} cols · {} workers · {} detections · {} repairs · {:.1} ms",
            args.input,
            table.n_rows(),
            table.n_cols(),
            engine.workers(),
            report.n_detections(),
            report.n_repairs(),
            wall.as_secs_f64() * 1000.0,
        );
        for (c, detected) in report.columns.iter().zip(&types) {
            let name = table
                .column(c.report.col)
                .map(|col| col.name().to_string())
                .unwrap_or_default();
            if let Some(d) = detected {
                println!(
                    "  {name}: semantic type {} ({:.0}% support)",
                    d.semantic_type.name(),
                    d.confidence * 100.0
                );
            }
            for r in &c.report.repairs {
                println!("  {name}[{}]: {:?} -> {:?}", r.row, r.original, r.repaired);
            }
        }
        let s = &report.session;
        println!(
            "session: {} feature generation(s) · {} row vectors computed, {} shared · \
             {}/{} distinct rows · mask memo {} hits / {} misses",
            s.feature_generations,
            s.feature_rows_computed,
            s.feature_row_hits,
            s.distinct_rows,
            s.table_rows,
            s.mask_cache_hits,
            s.mask_cache_misses,
        );
        if report.columns.len() > 1 {
            let ranked: Vec<String> = report
                .slowest_columns(3)
                .iter()
                .map(|c| {
                    let name = table
                        .column(c.report.col)
                        .map(|col| col.name().to_string())
                        .unwrap_or_default();
                    format!("{name} {:.1} ms", c.elapsed.as_secs_f64() * 1000.0)
                })
                .collect();
            println!("slowest columns: {}", ranked.join(" · "));
        }
        if let (Some(loaded), Some(flushed)) = (&loaded, &flushed) {
            println!(
                "store[{}]: warmed {} artifact(s) ({} skipped) · \
                 flushed {} record(s), {} bytes ({} evicted)",
                args.tenant,
                loaded.total(),
                loaded.skipped,
                flushed.records,
                flushed.bytes,
                flushed.evicted,
            );
        }
        println!("wrote {out_path}");
        if let Some(report_path) = &args.report {
            println!("wrote {report_path}");
        }
        if let Some(metrics_path) = &args.metrics {
            println!("wrote {metrics_path}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = if let Some(address) = args.connect.clone() {
        run_connect(&args, &address)
    } else if args.follow {
        run_follow(&args)
    } else {
        run(&args)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
