//! `datavinci-serve`: run the cleaning engine as a long-lived daemon.
//!
//! ```text
//! datavinci-serve --listen 127.0.0.1:7433 [--store DIR] [--store-budget BYTES]
//!                 [--workers N] [--cache-capacity N]
//!                 [--semantics full|limited|none]
//!                 [--strategy planner|rowwise|intersect]
//! datavinci-serve --unix /run/datavinci.sock [...]
//! ```
//!
//! Speaks newline-delimited JSON (see the `serve` module docs for the
//! protocol). One engine per tenant lives for the daemon's lifetime, so
//! every client shares its tenant's warm cache; with `--store` each
//! tenant's cache is loaded from disk at first touch and flushed after
//! every clean, making warmth survive daemon restarts too.
//!
//! On successful bind the daemon prints `listening on <address>` to
//! stdout (and flushes), so a supervisor can wait for readiness before
//! pointing clients at it. Send `{"op":"shutdown"}` to stop it.

use std::io::Write;
use std::process::ExitCode;

use datavinci_core::{RepairStrategy, SemanticMode};
use datavinci_engine::{Server, ServerConfig};

const USAGE: &str = "usage: datavinci-serve (--listen HOST:PORT | --unix PATH) \
                     [--store DIR] [--store-budget BYTES] [--workers N] \
                     [--cache-capacity N] [--semantics full|limited|none] \
                     [--strategy planner|rowwise|intersect]";

struct Args {
    listen: Option<String>,
    unix: Option<String>,
    cfg: ServerConfig,
}

/// `Ok(None)` means help was requested.
fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut args = Args {
        listen: None,
        unix: None,
        cfg: ServerConfig::default(),
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--listen" => args.listen = Some(value(arg)?),
            "--unix" => args.unix = Some(value(arg)?),
            "--store" => args.cfg.store_dir = Some(value(arg)?.into()),
            "--store-budget" => {
                args.cfg.store_budget = value(arg)?
                    .parse()
                    .map_err(|_| "--store-budget needs a byte count".to_string())?
            }
            "--workers" => {
                args.cfg.workers = value(arg)?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?
            }
            "--cache-capacity" => {
                args.cfg.cache_capacity = value(arg)?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--cache-capacity needs a positive integer".to_string())?
            }
            "--semantics" => {
                args.cfg.semantics = match value(arg)?.as_str() {
                    "full" => SemanticMode::Full,
                    "limited" => SemanticMode::Limited,
                    "none" => SemanticMode::None,
                    other => return Err(format!("unknown --semantics mode: {other}")),
                }
            }
            "--strategy" => {
                args.cfg.strategy = match value(arg)?.as_str() {
                    "planner" => RepairStrategy::Planner,
                    "rowwise" => RepairStrategy::RowWise,
                    "intersect" => RepairStrategy::Intersect,
                    other => return Err(format!("unknown --strategy: {other}")),
                }
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    match (&args.listen, &args.unix) {
        (None, None) => Err("one of --listen or --unix is required".to_string()),
        (Some(_), Some(_)) => Err("--listen and --unix are mutually exclusive".to_string()),
        _ => Ok(Some(args)),
    }
}

fn run(args: Args) -> Result<(), String> {
    let server = match (&args.listen, &args.unix) {
        (Some(addr), None) => {
            Server::bind_tcp(addr, args.cfg).map_err(|e| format!("cannot listen on {addr}: {e}"))?
        }
        (None, Some(path)) => Server::bind_unix(path, args.cfg)
            .map_err(|e| format!("cannot listen on {path}: {e}"))?,
        _ => unreachable!("parse_args enforces exactly one"),
    };
    println!("listening on {}", server.address());
    std::io::stdout()
        .flush()
        .map_err(|e| format!("cannot write stdout: {e}"))?;
    server.run().map_err(|e| format!("serve: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv) {
        Ok(Some(args)) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Ok(None) => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
