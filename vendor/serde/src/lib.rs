//! Offline shim for the sliver of `serde` this workspace touches.
//!
//! The build environment cannot reach a cargo registry, so this crate stands
//! in for `serde`. The bench crate only derives [`Serialize`] on plain metric
//! structs (no serializer backend is wired up anywhere), so the shim provides
//! a marker trait plus a derive that implements it. Swapping back to real
//! serde later is a one-line manifest change; no call sites need to move.

/// Marker for types whose fields are serializable. The derive implements it
/// structurally; no serializer backend exists in this workspace yet.
pub trait Serialize {}

pub use serde_derive::Serialize;

macro_rules! impl_serialize_prim {
    ($($t:ty),*) => {$( impl Serialize for $t {} )*};
}

impl_serialize_prim!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, str,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
