//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access to a cargo registry, so this
//! crate stands in for `rand`. It implements a deterministic xoshiro256**
//! generator seeded via SplitMix64 (the same construction `rand`'s `SmallRng`
//! family uses) and the `Rng` / `SeedableRng` / `SliceRandom` surface the
//! corpus generators and benchmarks call:
//!
//! - `rngs::StdRng` + `SeedableRng::seed_from_u64`
//! - `Rng::{gen_range, gen_bool, gen}` over integer / float ranges
//! - `seq::SliceRandom::{choose, shuffle}`
//!
//! Distribution quality is more than adequate for synthetic-benchmark
//! generation; it makes no cryptographic claims. Streams are stable across
//! runs and platforms, which the test suite relies on.

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a `Standard`-distributed type.
    fn gen<T: distributions::StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 key expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform range sampling, mirroring `rand::distributions`.
pub mod distributions {
    use super::RngCore;

    /// Types samplable by [`Rng::gen`](super::Rng::gen).
    pub trait StandardSample {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardSample for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            super::unit_f64(rng.next_u64())
        }
    }

    impl StandardSample for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl StandardSample for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    pub mod uniform {
        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range in gen_range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let offset = (rng.next_u64() as u128) % span;
                        (self.start as i128 + offset as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = self.into_inner();
                        assert!(lo <= hi, "empty inclusive range in gen_range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let offset = (rng.next_u64() as u128) % span;
                        (lo as i128 + offset as i128) as $t
                    }
                }
            )*};
        }

        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range in gen_range");
                        let unit = super::super::unit_f64(rng.next_u64()) as $t;
                        self.start + unit * (self.end - self.start)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = self.into_inner();
                        let unit = super::super::unit_f64(rng.next_u64()) as $t;
                        lo + unit * (hi - lo)
                    }
                }
            )*};
        }

        impl_float_range!(f32, f64);
    }

    pub use uniform::SampleRange;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        type Item;

        /// Uniformly picks one element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_land_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.0..100.0);
            assert!((0.0..100.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_and_shuffle_cover_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));

        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "20-element shuffle staying sorted is ~impossible"
        );
    }

    #[test]
    fn empty_choose_is_none() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
