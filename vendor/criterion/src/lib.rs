//! Offline shim for the subset of the `criterion` 0.5 API this workspace's
//! benches use: `Criterion::{default, sample_size, bench_function}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros (both plain and
//! `name/config/targets` forms).
//!
//! It times each routine with `std::time::Instant` over `sample_size`
//! batches after a short warm-up and prints a mean-per-iteration line, so
//! `cargo bench` still yields usable relative numbers offline. No outlier
//! analysis, plotting, or baseline persistence.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `Bencher::iter_batched` amortizes setup cost. The shim only uses the
/// variant to choose how many routine calls share one setup value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timing samples for one benchmark target.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            iters_per_sample: 8,
            sample_count,
        }
    }

    /// Times `routine` back-to-back; the routine's output is black-boxed so
    /// the optimizer cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call to fault in caches and lazy statics.
        black_box(routine());
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_count {
            let mut total = Duration::ZERO;
            for _ in 0..self.iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            self.samples.push(total);
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let total: Duration = self.samples.iter().sum();
        total.as_nanos() as f64 / (self.samples.len() as u64 * self.iters_per_sample) as f64
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(1);
        self
    }

    /// Runs one benchmark target and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_count);
        f(&mut bencher);
        let ns = bencher.mean_ns();
        let pretty = if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        };
        println!(
            "{id:<40} time: {pretty}/iter ({} samples)",
            self.sample_count
        );
        self
    }
}

/// Mirrors `criterion::criterion_group!` in both accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group!(shim_group, target);

    #[test]
    fn group_runs_and_times() {
        shim_group();
    }

    #[test]
    fn named_form_compiles_and_runs() {
        criterion_group!(
            name = named;
            config = Criterion::default().sample_size(3);
            targets = target
        );
        named();
    }
}
