//! Offline, deterministic shim for the subset of the `proptest` API used by
//! this workspace's property tests.
//!
//! The build environment has no cargo-registry access, so this crate stands
//! in for `proptest`. It keeps the call-site surface identical — the
//! `proptest!` macro, `prop_assert*` / `prop_assume!`, `Strategy` with
//! `prop_map` / `prop_recursive`, `prop_oneof!`, `prop::collection::vec`,
//! range and regex-literal strategies — while swapping the engine for a
//! deliberately simple one:
//!
//! - **Deterministic by construction.** Each test's RNG is seeded from an
//!   FNV-1a hash of the test's name, so every run of every machine explores
//!   the same cases (the CI-determinism requirement). Set `PROPTEST_SEED`
//!   to perturb the stream when hunting for new counterexamples.
//! - **No shrinking.** On failure the offending inputs are printed verbatim;
//!   cases here are small enough (bounded case counts) that raw
//!   counterexamples are readable.
//! - **Regex strategies** support the `[class]{m,n}` / literal concatenation
//!   subset the suite uses, not full regex syntax.

pub mod strategy;
pub mod test_runner;

/// `prop::collection::vec` and friends live here, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs one `proptest!`-generated test body over `config.cases` generated
/// cases. Rejected cases (via `prop_assume!`) don't count toward the total;
/// a failed assertion panics with the rendered inputs appended.
pub fn run_property_test<A, F>(
    test_name: &str,
    config: &test_runner::ProptestConfig,
    strategies: &A,
    mut body: F,
) where
    A: strategy::Strategy,
    A::Value: std::fmt::Debug,
    F: FnMut(A::Value) -> Result<(), test_runner::TestCaseError>,
{
    let mut rng = test_runner::rng_for_test(test_name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    // Bound total attempts so an over-eager `prop_assume!` cannot spin forever.
    let max_attempts = config.cases.saturating_mul(16).max(64);
    for _ in 0..max_attempts {
        if passed >= config.cases {
            break;
        }
        let inputs = strategies.generate(&mut rng);
        let rendered = format!("{inputs:?}");
        match body(inputs) {
            Ok(()) => passed += 1,
            Err(test_runner::TestCaseError::Reject) => rejected += 1,
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case failed for `{test_name}`\n  inputs: {rendered}\n  {msg}\n\
                     (deterministic seed; rerun reproduces this case)"
                );
            }
        }
    }
    // Mirror real proptest's too-many-rejects failure: a suite that quietly
    // runs fewer cases than configured gives a false sense of coverage.
    assert!(
        passed >= config.cases,
        "proptest `{test_name}`: too many prop_assume! rejections — only {passed} of \
         {} configured cases ran ({rejected} rejections in {max_attempts} attempts); \
         loosen the assumption or the strategy",
        config.cases
    );
}

/// The workhorse macro: expands each `fn name(arg in strategy, ...) {{ body }}`
/// item into a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strategies = ($($strategy,)+);
            $crate::run_property_test(
                stringify!($name),
                &__config,
                &__strategies,
                |($($arg,)+)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Skips the current case (does not count toward the case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Like `assert!`, but reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, but reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {left:?}\n right: {right:?}",
            stringify!($left),
            stringify!($right),
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "{}\n  left: {left:?}\n right: {right:?}",
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Like `assert_ne!`, but reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {left:?}",
            stringify!($left),
            stringify!($right),
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left != right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  both: {left:?}", format!($($fmt)+)),
            ));
        }
    }};
}

/// Uniformly picks one of the listed strategies each case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
