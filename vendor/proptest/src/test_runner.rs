//! Configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mirrors the `proptest::test_runner::Config` fields this workspace sets.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Successful (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim stays deliberately bounded
        // so property suites keep CI fast. Individual tests override via
        // `ProptestConfig::with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; try another.
    Reject,
    /// A `prop_assert*!` failed with this rendered message.
    Fail(String),
}

/// Seeds a test's RNG from its name (FNV-1a), optionally perturbed by the
/// `PROPTEST_SEED` environment variable. Same name → same case stream, on
/// every machine, which keeps CI deterministic.
pub fn rng_for_test(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(extra) = seed.trim().parse::<u64>() {
            hash = hash.wrapping_add(extra.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
    }
    StdRng::seed_from_u64(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_name_same_stream() {
        let mut a = rng_for_test("alpha");
        let mut b = rng_for_test("alpha");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_differ() {
        let mut a = rng_for_test("alpha");
        let mut b = rng_for_test("beta");
        let distinct = (0..16).any(|_| a.next_u64() != b.next_u64());
        assert!(distinct);
    }
}
