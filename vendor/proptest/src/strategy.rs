//! Value-generation strategies: the shim's replacement for proptest's
//! strategy tree. Strategies are plain generators (no shrinking); the
//! combinator surface (`prop_map`, `prop_recursive`, unions, collections,
//! tuples, ranges, regex literals) matches what the workspace's property
//! tests call.

use std::ops::Range;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A reference-counted, type-erased strategy. Clonable so recursive
/// strategies can re-enter themselves.
pub type BoxedStrategy<T> = Rc<dyn Strategy<Value = T>>;

/// Generates values of `Self::Value` from a seeded RNG.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// smaller structure and wraps it one level. `depth` bounds nesting;
    /// the `_desired_size` / `_expected_branch_size` tuning knobs of real
    /// proptest are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Rc::new(self)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let index = rng.gen_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

/// `prop_recursive` adapter: draws a nesting depth, then stacks `recurse`
/// that many times over the base strategy. Depth 0 is drawn most often so
/// small structures stay common, matching proptest's bias toward simplicity.
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    depth: u32,
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        // Geometric-ish depth draw: each extra level is half as likely.
        let mut levels = 0;
        while levels < self.depth && rng.gen_bool(0.5) {
            levels += 1;
        }
        let mut strategy = self.base.clone();
        for _ in 0..levels {
            strategy = (self.recurse)(strategy);
        }
        strategy.generate(rng)
    }
}

/// Length specification for [`VecStrategy`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// `prop::collection::vec` adapter.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// String literals act as regex strategies, as in proptest. The shim
/// supports the subset the suite uses: concatenations of literal characters
/// and `[...]` classes (ranges, escapes), each optionally quantified with
/// `{m}` or `{m,n}`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let atoms = parse_simple_regex(self)
            .unwrap_or_else(|err| panic!("unsupported regex strategy {self:?}: {err}"));
        let mut out = String::new();
        for atom in &atoms {
            let reps = rng.gen_range(atom.min..=atom.max);
            for _ in 0..reps {
                out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
            }
        }
        out
    }
}

/// One quantified alphabet drawn from a regex literal.
struct RegexAtom {
    chars: Vec<char>,
    min: u32,
    max: u32,
}

/// Parses the `[class]{m,n}` / literal-char concatenation subset.
fn parse_simple_regex(pattern: &str) -> Result<Vec<RegexAtom>, String> {
    let mut atoms = Vec::new();
    let mut input = pattern.chars().peekable();
    while let Some(c) = input.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let item = input.next().ok_or("unterminated character class")?;
                    match item {
                        ']' => break,
                        '\\' => {
                            let escaped = input.next().ok_or("dangling escape in class")?;
                            set.push(escaped);
                            prev = Some(escaped);
                        }
                        '-' if prev.is_some() && input.peek().is_some_and(|&n| n != ']') => {
                            let hi = input.next().expect("peeked");
                            let lo = prev.take().ok_or("range without start")?;
                            if lo > hi {
                                return Err(format!("inverted range {lo}-{hi}"));
                            }
                            // `lo` is already in the set; add the rest.
                            let mut ch = lo as u32 + 1;
                            while ch <= hi as u32 {
                                set.push(char::from_u32(ch).ok_or("bad range char")?);
                                ch += 1;
                            }
                        }
                        other => {
                            set.push(other);
                            prev = Some(other);
                        }
                    }
                }
                if set.is_empty() {
                    return Err("empty character class".into());
                }
                set
            }
            '\\' => vec![input.next().ok_or("dangling escape")?],
            '.' => (' '..='~').collect(),
            '(' | ')' | '|' | '*' | '+' | '?' => {
                return Err(format!("regex feature {c:?} not supported by the shim"));
            }
            literal => vec![literal],
        };
        let (min, max) = if input.peek() == Some(&'{') {
            input.next();
            let mut spec = String::new();
            loop {
                let d = input.next().ok_or("unterminated quantifier")?;
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => {
                    let lo: u32 = lo.trim().parse().map_err(|_| "bad quantifier min")?;
                    let hi: u32 = hi.trim().parse().map_err(|_| "bad quantifier max")?;
                    if lo > hi {
                        return Err(format!("quantifier {{{spec}}} inverted"));
                    }
                    (lo, hi)
                }
                None => {
                    let n: u32 = spec.trim().parse().map_err(|_| "bad quantifier count")?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(RegexAtom { chars, min, max });
    }
    Ok(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    fn all_in(s: &str, allowed: impl Fn(char) -> bool) -> bool {
        s.chars().all(allowed)
    }

    #[test]
    fn regex_class_with_quantifier() {
        let mut rng = rng_for_test("regex_class_with_quantifier");
        for _ in 0..200 {
            let s = "[a-c]{1,3}".generate(&mut rng);
            assert!((1..=3).contains(&s.len()), "bad len: {s:?}");
            assert!(all_in(&s, |c| ('a'..='c').contains(&c)), "bad char: {s:?}");
        }
    }

    #[test]
    fn regex_escaped_dash_and_specials() {
        let mut rng = rng_for_test("regex_escaped_dash_and_specials");
        for _ in 0..200 {
            let s = "[a-zA-Z0-9.\\-_ ]{1,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 12);
            assert!(
                all_in(&s, |c| c.is_ascii_alphanumeric() || ".-_ ".contains(c)),
                "bad char in {s:?}"
            );
        }
    }

    #[test]
    fn regex_printable_ascii_range() {
        let mut rng = rng_for_test("regex_printable_ascii_range");
        for _ in 0..200 {
            let s = "[ -~]{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(
                all_in(&s, |c| (' '..='~').contains(&c)),
                "bad char in {s:?}"
            );
        }
    }

    #[test]
    fn regex_literals_concatenate() {
        let mut rng = rng_for_test("regex_literals_concatenate");
        assert_eq!("abc".generate(&mut rng), "abc");
        let s = "x[01]{2}y".generate(&mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.starts_with('x') && s.ends_with('y'));
    }

    #[test]
    fn unsupported_syntax_is_rejected() {
        assert!(parse_simple_regex("(a|b)+").is_err());
        assert!(parse_simple_regex("[abc").is_err());
        assert!(parse_simple_regex("a{2,1}").is_err());
    }

    #[test]
    fn union_map_and_just_compose() {
        let strategy = crate::prop_oneof![Just(1u32), (10u32..20).prop_map(|n| n * 2),];
        let mut rng = rng_for_test("union_map_and_just_compose");
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!(v == 1 || (20..40).contains(&v), "unexpected {v}");
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let strategy = crate::collection::vec(0usize..5, 2..6);
        let mut rng = rng_for_test("vec_strategy_respects_size");
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let fixed = crate::collection::vec(0usize..5, 3);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }

    #[test]
    fn recursive_strategy_terminates_and_nests() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strategy = Just(Tree::Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut rng = rng_for_test("recursive_strategy_terminates_and_nests");
        let mut max_seen = 0;
        for _ in 0..300 {
            max_seen = max_seen.max(depth(&strategy.generate(&mut rng)));
        }
        assert!(max_seen >= 1, "recursion never fired");
        assert!(max_seen <= 4, "depth bound exceeded: {max_seen}");
    }
}
