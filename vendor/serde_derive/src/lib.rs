//! Derive backing the offline `serde` shim: emits `impl serde::Serialize`
//! for the annotated type. Hand-rolled token scanning (no `syn`/`quote`,
//! which are equally unfetchable offline); supports the plain non-generic
//! structs and enums this workspace derives on.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input).expect("derive(Serialize): could not find type name");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("derive(Serialize): generated impl must parse")
}

/// Finds the identifier following the `struct` / `enum` / `union` keyword.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input {
        if let TokenTree::Ident(ident) = tt {
            let text = ident.to_string();
            if saw_kw {
                return Some(text);
            }
            if matches!(text.as_str(), "struct" | "enum" | "union") {
                saw_kw = true;
            }
        }
    }
    None
}
